"""Data-driven bandwidth selection rules.

Both rules are normal-reference ("rule of thumb") selectors: per-attribute
bandwidths proportional to the attribute's spread times ``n^(-1/(d+4))``.
They are the standard defaults in the kernel-estimation literature the
paper cites (Silverman 1986; Scott 1992) and are what a one-pass fit can
compute from streaming moments.
"""

from __future__ import annotations

import numpy as np

from repro.density.kernels import Kernel, get_kernel
from repro.exceptions import ParameterError

__all__ = [
    "scott_bandwidth",
    "silverman_bandwidth",
    "resolve_bandwidth",
]


#: Constant attributes get this fraction of the largest spread (or the
#: data-magnitude hint) as their stand-in spread.
_RELATIVE_FLOOR = 1e-3


def _validate(
    std: np.ndarray, n_points: int, scale: float | None = None
) -> np.ndarray:
    std = np.asarray(std, dtype=np.float64)
    if n_points < 1:
        raise ParameterError(f"n_points must be >= 1; got {n_points}.")
    if n_points < 2:
        raise ParameterError(
            "bandwidth rules need at least 2 points (the sample spread of "
            "a single point is undefined); pass numeric bandwidths for a "
            "single-point fit."
        )
    if (std < 0).any():
        raise ParameterError("standard deviations must be non-negative.")
    # A constant attribute would give bandwidth 0 (a delta spike). Fall
    # back to a small positive width *relative to the data's scale* —
    # an absolute floor would be a delta spike for data in units of 1e6
    # and an enormous bandwidth for data in units of 1e-6.
    reference = float(std.max())
    if scale is not None:
        reference = max(reference, abs(float(scale)))
    if reference <= 0:
        reference = 1.0  # every attribute constant at zero: unit scale
    floor = np.where(std > 0, std, _RELATIVE_FLOOR * reference)
    return floor


def scott_bandwidth(
    std,
    n_points: int,
    n_dims: int,
    kernel: str | Kernel = "gaussian",
    *,
    scale: float | None = None,
) -> np.ndarray:
    """Scott's rule: ``h_j = delta_0(K) * sigma_j * n^(-1/(d+4))``.

    Parameters
    ----------
    std:
        Per-attribute standard deviations, shape ``(d,)``.
    n_points:
        Dataset size the estimator represents.
    n_dims:
        Dimensionality ``d``.
    kernel:
        Kernel whose canonical-bandwidth factor rescales the Gaussian
        reference rule.
    scale:
        Optional data-magnitude hint (e.g. the largest attribute mean,
        in absolute value) used to floor the spread of constant
        attributes relative to the data's scale.
    """
    std = _validate(std, n_points, scale)
    factor = get_kernel(kernel).canonical_bandwidth
    return factor * std * n_points ** (-1.0 / (n_dims + 4))


def silverman_bandwidth(
    std,
    n_points: int,
    n_dims: int,
    kernel: str | Kernel = "gaussian",
    *,
    scale: float | None = None,
) -> np.ndarray:
    """Silverman's rule: Scott's rule shrunk by ``(4/(d+2))^(1/(d+4))``."""
    std = _validate(std, n_points, scale)
    factor = get_kernel(kernel).canonical_bandwidth
    shrink = (4.0 / (n_dims + 2.0)) ** (1.0 / (n_dims + 4.0))
    return factor * shrink * std * n_points ** (-1.0 / (n_dims + 4))


_RULES = {"scott": scott_bandwidth, "silverman": silverman_bandwidth}


def resolve_bandwidth(
    bandwidth,
    std: np.ndarray,
    n_points: int,
    n_dims: int,
    kernel: str | Kernel,
    *,
    scale: float | None = None,
) -> np.ndarray:
    """Turn a bandwidth spec (rule name, scalar, or vector) into per-dim widths."""
    if isinstance(bandwidth, str):
        try:
            rule = _RULES[bandwidth]
        except KeyError:
            raise ParameterError(
                f"unknown bandwidth rule {bandwidth!r}; "
                f"choose from {sorted(_RULES)} or pass numeric widths."
            ) from None
        return rule(std, n_points, n_dims, kernel, scale=scale)
    width = np.asarray(bandwidth, dtype=np.float64)
    if width.ndim == 0:
        width = np.full(n_dims, float(width))
    if width.shape != (n_dims,):
        raise ParameterError(
            f"bandwidth must be a scalar or have shape ({n_dims},); "
            f"got shape {width.shape}."
        )
    if (width <= 0).any():
        raise ParameterError("bandwidths must be strictly positive.")
    return width
