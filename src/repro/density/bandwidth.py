"""Data-driven bandwidth selection rules.

Both rules are normal-reference ("rule of thumb") selectors: per-attribute
bandwidths proportional to the attribute's spread times ``n^(-1/(d+4))``.
They are the standard defaults in the kernel-estimation literature the
paper cites (Silverman 1986; Scott 1992) and are what a one-pass fit can
compute from streaming moments.
"""

from __future__ import annotations

import numpy as np

from repro.density.kernels import Kernel, get_kernel
from repro.exceptions import ParameterError

__all__ = [
    "scott_bandwidth",
    "silverman_bandwidth",
    "resolve_bandwidth",
]


def _validate(std: np.ndarray, n_points: int) -> np.ndarray:
    std = np.asarray(std, dtype=np.float64)
    if n_points < 1:
        raise ParameterError(f"n_points must be >= 1; got {n_points}.")
    if (std < 0).any():
        raise ParameterError("standard deviations must be non-negative.")
    # A constant attribute would give bandwidth 0 (a delta spike). Fall
    # back to a small positive width so evaluation stays finite.
    floor = np.where(std > 0, std, 1e-3)
    return floor


def scott_bandwidth(
    std, n_points: int, n_dims: int, kernel: str | Kernel = "gaussian"
) -> np.ndarray:
    """Scott's rule: ``h_j = delta_0(K) * sigma_j * n^(-1/(d+4))``.

    Parameters
    ----------
    std:
        Per-attribute standard deviations, shape ``(d,)``.
    n_points:
        Dataset size the estimator represents.
    n_dims:
        Dimensionality ``d``.
    kernel:
        Kernel whose canonical-bandwidth factor rescales the Gaussian
        reference rule.
    """
    std = _validate(std, n_points)
    factor = get_kernel(kernel).canonical_bandwidth
    return factor * std * n_points ** (-1.0 / (n_dims + 4))


def silverman_bandwidth(
    std, n_points: int, n_dims: int, kernel: str | Kernel = "gaussian"
) -> np.ndarray:
    """Silverman's rule: Scott's rule shrunk by ``(4/(d+2))^(1/(d+4))``."""
    std = _validate(std, n_points)
    factor = get_kernel(kernel).canonical_bandwidth
    shrink = (4.0 / (n_dims + 2.0)) ** (1.0 / (n_dims + 4.0))
    return factor * shrink * std * n_points ** (-1.0 / (n_dims + 4))


_RULES = {"scott": scott_bandwidth, "silverman": silverman_bandwidth}


def resolve_bandwidth(
    bandwidth,
    std: np.ndarray,
    n_points: int,
    n_dims: int,
    kernel: str | Kernel,
) -> np.ndarray:
    """Turn a bandwidth spec (rule name, scalar, or vector) into per-dim widths."""
    if isinstance(bandwidth, str):
        try:
            rule = _RULES[bandwidth]
        except KeyError:
            raise ParameterError(
                f"unknown bandwidth rule {bandwidth!r}; "
                f"choose from {sorted(_RULES)} or pass numeric widths."
            ) from None
        return rule(std, n_points, n_dims, kernel)
    width = np.asarray(bandwidth, dtype=np.float64)
    if width.ndim == 0:
        width = np.full(n_dims, float(width))
    if width.shape != (n_dims,):
        raise ParameterError(
            f"bandwidth must be a scalar or have shape ({n_dims},); "
            f"got shape {width.shape}."
        )
    if (width <= 0).any():
        raise ParameterError("bandwidths must be strictly positive.")
    return width
