"""Haar-wavelet compressed histogram density estimator.

One of the density-summary families the paper cites as alternatives to
kernels (Vitter et al., CIKM 1998; Matias et al., SIGMOD 1998): build an
equi-width histogram, take its d-dimensional Haar wavelet transform,
keep only the ``n_coefficients`` largest-magnitude coefficients, and
reconstruct on demand. The summary size is decoupled from the grid
resolution, exactly like the kernel estimator's center count — which is
what makes it a fair drop-in back-end for the biased sampler.
"""

from __future__ import annotations

import numpy as np

from repro.density.base import DensityEstimator
from repro.exceptions import ParameterError
from repro.utils.scaling import MinMaxScaler
from repro.utils.streams import DataStream

__all__ = [
    "haar_forward",
    "haar_inverse",
    "WaveletDensityEstimator",
]


def haar_forward(values: np.ndarray) -> np.ndarray:
    """Full d-dimensional Haar transform (orthonormal, sizes = 2^m)."""
    out = values.astype(np.float64).copy()
    for axis in range(out.ndim):
        out = _haar_axis(out, axis, inverse=False)
    return out


def haar_inverse(coeffs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`haar_forward`."""
    out = coeffs.astype(np.float64).copy()
    for axis in range(out.ndim):
        out = _haar_axis(out, axis, inverse=True)
    return out


def _haar_axis(values: np.ndarray, axis: int, inverse: bool) -> np.ndarray:
    """1-D orthonormal Haar transform applied along one axis."""
    values = np.moveaxis(values, axis, 0)
    size = values.shape[0]
    if size & (size - 1):
        raise ParameterError(f"Haar transform needs a power-of-two size; got {size}.")
    root2 = np.sqrt(2.0)
    if not inverse:
        work = values.copy()
        length = size
        while length > 1:
            half = length // 2
            evens = work[0:length:2].copy()
            odds = work[1:length:2].copy()
            work[:half] = (evens + odds) / root2
            work[half:length] = (evens - odds) / root2
            length = half
        out = work
    else:
        work = values.copy()
        length = 2
        while length <= size:
            half = length // 2
            approx = work[:half].copy()
            detail = work[half:length].copy()
            work[0:length:2] = (approx + detail) / root2
            work[1:length:2] = (approx - detail) / root2
            length *= 2
        out = work
    return np.moveaxis(out, 0, axis)


class WaveletDensityEstimator(DensityEstimator):
    """Top-m Haar coefficients of an equi-width histogram.

    Dataset passes: 2 — a bounding-box scan followed by the histogram
    counting scan the Haar transform is taken over.

    Memory: O(m) — the dense ``bins_per_dim ** d`` histogram the Haar
    transform runs over, then the thresholded coefficient table.

    Parameters
    ----------
    bins_per_dim:
        Histogram resolution per attribute; must be a power of two.
    n_coefficients:
        Wavelet coefficients retained (the summary budget, comparable
        to the kernel estimator's ``n_kernels``).

    Notes
    -----
    Thresholding can produce small negative reconstructed cells; they
    are clipped to zero at evaluation, which slightly redistributes
    mass — the classic wavelet-histogram trade-off.
    """

    __n_passes__ = 2

    #: Peak working-memory bound of fit()/evaluate() (audited by RA005).
    __space__ = "O(m)"

    def __init__(self, bins_per_dim: int = 32, n_coefficients: int = 1000):
        if bins_per_dim < 2 or bins_per_dim & (bins_per_dim - 1):
            raise ParameterError(
                f"bins_per_dim must be a power of two >= 2; got {bins_per_dim}."
            )
        if n_coefficients < 1:
            raise ParameterError(
                f"n_coefficients must be >= 1; got {n_coefficients}."
            )
        self.bins_per_dim = int(bins_per_dim)
        self.n_coefficients = int(n_coefficients)
        self.scaler_: MinMaxScaler | None = None
        self.grid_: np.ndarray | None = None
        self.cell_volume_: float | None = None
        self.n_points_: int | None = None
        self.n_dims_: int | None = None
        self.n_kept_: int | None = None

    def fit(self, data=None, *, stream: DataStream | None = None):
        source = self._as_stream(data, stream)
        scaler = MinMaxScaler()
        for chunk in source:
            scaler.partial_fit(chunk)
        self.scaler_ = scaler

        n_dims = source.n_dims
        if self.bins_per_dim**n_dims > 2**24:
            raise ParameterError(
                "wavelet grid too large; lower bins_per_dim or the "
                "dimensionality."
            )
        histogram = np.zeros((self.bins_per_dim,) * n_dims)
        n = 0
        for chunk in source:
            n += chunk.shape[0]
            idx = self._cell_indices(chunk)
            np.add.at(histogram, tuple(idx.T), 1.0)
        if n == 0:
            raise ParameterError("cannot fit a density estimator on no data.")

        coeffs = haar_forward(histogram)
        flat = np.abs(coeffs).ravel()
        keep = min(self.n_coefficients, flat.size)
        if keep < flat.size:
            # Exact top-k by magnitude (ties broken arbitrarily, so the
            # summary honours the budget exactly).
            drop = np.argpartition(flat, flat.size - keep)[: flat.size - keep]
            coeffs[np.unravel_index(drop, coeffs.shape)] = 0.0
        self.n_kept_ = int((coeffs != 0).sum())
        self.grid_ = haar_inverse(coeffs)
        self.n_points_ = n
        self.n_dims_ = n_dims
        self.cell_volume_ = scaler.volume_ / self.bins_per_dim**n_dims
        return self

    def _cell_indices(self, points: np.ndarray) -> np.ndarray:
        unit = self.scaler_.transform(points)
        idx = np.floor(unit * self.bins_per_dim).astype(np.int64)
        return np.clip(idx, 0, self.bins_per_dim - 1)

    def _evaluate(self, points: np.ndarray) -> np.ndarray:
        idx = self._cell_indices(points)
        values = self.grid_[tuple(idx.T)]
        return np.maximum(values, 0.0) / self.cell_volume_
