"""Abstract interface shared by all density estimators.

The contract follows the paper's definition (section 2.1): a density
estimator ``f`` for a dataset ``D`` of ``n`` points satisfies, for any
region ``R``, ``integral_R f ~= |D ∩ R|``. Densities therefore integrate
to ``n`` over the data domain, *not* to 1 — this normalisation is what
makes the biased-sampling algebra in the paper work out.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import NotFittedError
from repro.utils.streams import DataStream, as_stream

__all__ = ["DensityEstimator"]


class DensityEstimator(abc.ABC):
    """Base class: fit on a bounded number of dataset passes, then
    evaluate anywhere.

    Subclasses must set ``n_points_`` and ``n_dims_`` during :meth:`fit`
    and implement :meth:`_evaluate` on raw (unscaled) coordinates.

    ``__n_passes__`` declares how many dataset scans :meth:`fit` costs;
    the class-level value of 1 is the *contract* assumed by callers that
    receive an estimator dynamically (and by the ``repro-audit`` RA001
    static check at such call sites). Subclasses whose fit needs more
    scans (e.g. bounds pass + counting pass) must override it with
    their true count. ``__space__`` is the matching peak-allocation
    contract (RA005): fitting or evaluating an estimator costs at most
    O(m) working memory in the summary size ``m`` — never O(n) in the
    dataset — and dynamically-typed ``.fit()``/``.evaluate()`` call
    sites are charged this bound.

    Memory: O(m) — the fitted summary (centers/coefficients/cells).
    """

    #: Dataset scans one fit() costs (audited statically by RA001).
    __n_passes__ = 1

    #: Peak working-memory bound of fit()/evaluate() (audited by RA005).
    __space__ = "O(m)"

    n_points_: int | None = None
    n_dims_: int | None = None

    @abc.abstractmethod
    def fit(self, data, *, stream: DataStream | None = None) -> "DensityEstimator":
        """Fit the estimator in a single pass over the dataset."""

    @abc.abstractmethod
    def _evaluate(self, points: np.ndarray) -> np.ndarray:
        """Density at each row of ``points`` (already validated)."""

    # -- public evaluation ---------------------------------------------------

    def evaluate(self, points) -> np.ndarray:
        """Estimated density at each query point.

        Returns an array of non-negative values that integrate
        (approximately) to ``n_points_`` over the data domain.
        """
        self._require_fitted()
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            points = points.reshape(1, -1)
        if points.shape[1] != self.n_dims_:
            raise ValueError(
                f"query points have {points.shape[1]} dims; estimator was "
                f"fit on {self.n_dims_}."
            )
        return self._evaluate(points)

    def __call__(self, points) -> np.ndarray:
        return self.evaluate(points)

    def ball_mass(
        self,
        centers,
        radius: float,
        *,
        n_mc: int = 256,
        random_state=None,
    ) -> np.ndarray:
        """Approximate ``integral_{Ball(c, r)} f`` for each center.

        This is the quantity ``N'_D(O, k)`` of the paper's outlier
        detector (section 3.2): the expected number of dataset points
        within distance ``radius`` of each center.

        The default implementation uses Monte-Carlo integration with
        ``n_mc`` points drawn uniformly from the ball; subclasses with a
        closed form may override.
        """
        from repro.utils.geometry import ball_volume
        from repro.utils.validation import check_random_state

        self._require_fitted()
        centers = np.asarray(centers, dtype=np.float64)
        if centers.ndim == 1:
            centers = centers.reshape(1, -1)
        rng = check_random_state(random_state)
        d = self.n_dims_
        volume = ball_volume(radius, d)
        # Uniform sampling in a d-ball: gaussian direction * U^(1/d) radius.
        directions = rng.standard_normal((n_mc, d))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        radii = radius * rng.random(n_mc) ** (1.0 / d)
        offsets = directions * radii[:, None]
        masses = np.empty(centers.shape[0])
        for i, center in enumerate(centers):
            values = self._evaluate(center[None, :] + offsets)
            masses[i] = values.mean() * volume
        return masses

    def total_mass(self) -> float:
        """The mass the estimator integrates to (== number of points)."""
        self._require_fitted()
        return float(self.n_points_)

    # -- helpers ---------------------------------------------------------------

    def _require_fitted(self) -> None:
        if self.n_points_ is None:
            raise NotFittedError(
                f"{type(self).__name__} is not fitted; call fit() first."
            )

    @staticmethod
    def _as_stream(data, stream: DataStream | None) -> DataStream:
        """Resolve the (data, stream) argument pair used by fit()."""
        if stream is not None:
            return stream
        return as_stream(data)
