"""Zero-copy chunk shipping for the process backend.

The process backend pickles every task — for chunk maps that means
every dataset chunk crosses the pool pipe twice (once serialised by the
coordinator, once deserialised by the worker). For the hot evaluation
passes the chunk bytes dominate that cost, so this module ships large
ndarray chunks through shared memory instead:

* the coordinator writes each chunk once into a file under a
  memory-backed directory (``/dev/shm`` on Linux), producing a tiny
  picklable :class:`SharedArray` handle (path, dtype, shape);
* workers ``np.memmap`` the file read-only — the kernel shares the
  pages, no bytes are copied or pickled per task;
* the coordinator owns the lifecycle: :class:`SharedChunks` unlinks
  every segment when the map finishes, so a crashed or killed worker
  can never leak a segment (an unlinked inode disappears as soon as
  the last surviving mapping goes away).

When no usable shared-memory directory exists (``/dev/shm`` missing or
read-only, e.g. in a restricted container), :class:`SharedChunks`
degrades to handing back the original chunks, which the backend then
pickles exactly as before — behaviour, results and ordering are
identical either way.

The ``REPRO_SHM_DIR`` environment variable overrides the segment
directory (point it at a tmpfs mount, or at a non-existent path to
force the pickling fallback).
"""

from __future__ import annotations

import itertools
import os
import tempfile
from dataclasses import dataclass

import numpy as np

__all__ = [
    "SHM_DIR_ENV",
    "SharedArray",
    "SharedChunks",
    "resolve_chunk",
    "shm_dir",
]

#: Environment variable overriding the shared-segment directory.
SHM_DIR_ENV = "REPRO_SHM_DIR"

_DEFAULT_SHM_DIR = "/dev/shm"

#: Ship a chunk through shared memory only above this many bytes:
#: below it, pickling through the pool pipe is cheaper than a file
#: round-trip.
_MIN_SHARED_BYTES = 1 << 16

_segment_ids = itertools.count()


def shm_dir() -> str | None:
    """The usable shared-segment directory, or ``None`` for fallback.

    Honours ``REPRO_SHM_DIR`` first, then ``/dev/shm``; a directory
    qualifies only if it exists and is writable.
    """
    path = os.environ.get(SHM_DIR_ENV, "").strip() or _DEFAULT_SHM_DIR
    if os.path.isdir(path) and os.access(path, os.W_OK):
        return path
    return None


@dataclass(frozen=True)
class SharedArray:
    """Picklable handle to an ndarray parked in a shared-memory file.

    Only the handle (path string, dtype string, shape tuple) crosses
    the process boundary; the array bytes stay in the kernel page
    cache and are mapped, not copied, by :meth:`open`.
    """

    path: str
    dtype: str
    shape: tuple[int, ...]

    @classmethod
    def create(cls, array: np.ndarray, directory: str) -> "SharedArray":
        """Park ``array`` in a new segment file under ``directory``.

        The single coordinator-side copy happens here; the file is
        created unreadable to other users (``tempfile.mkstemp``
        semantics) and named so stray segments are attributable.
        """
        array = np.ascontiguousarray(array)
        fd, path = tempfile.mkstemp(
            prefix=f"repro-shm-{os.getpid()}-{next(_segment_ids)}-",
            suffix=".bin",
            dir=directory,
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(memoryview(array).cast("B"))
        except BaseException:
            os.unlink(path)
            raise
        return cls(path=path, dtype=array.dtype.str, shape=array.shape)

    def open(self) -> np.ndarray:
        """Map the segment read-only; no bytes are copied."""
        return np.memmap(
            self.path, dtype=np.dtype(self.dtype), mode="r", shape=self.shape
        )

    def unlink(self) -> None:
        """Remove the segment file (idempotent)."""
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


def resolve_chunk(item):
    """Materialise a task input on the worker side.

    :class:`SharedArray` handles map their segment; everything else —
    plain chunks from the pickling fallback, task dataclasses, block
    offsets — passes through untouched. Task functions therefore never
    see the difference between the shared and pickled paths.
    """
    if isinstance(item, SharedArray):
        return item.open()
    return item


class SharedChunks:
    """Context manager parking eligible chunks in shared memory.

    Inside the ``with`` block, :attr:`items` holds one entry per input
    chunk: a :class:`SharedArray` handle where sharing applies (large
    float/int ndarray, usable segment directory), the original object
    otherwise. On exit every segment is unlinked — workers that still
    hold a mapping keep reading the orphaned inode until they drop it,
    so teardown can never race a slow worker, and a worker that died
    mid-task leaves nothing behind for the coordinator to miss.

    Parameters
    ----------
    chunks:
        The ordered task inputs about to be fanned out.
    enabled:
        Master switch; pass ``False`` to skip sharing wholesale (the
        thread and serial backends already share address space).
    """

    def __init__(self, chunks, enabled: bool = True) -> None:
        self._chunks = list(chunks)
        self._enabled = bool(enabled)
        self._segments: list[SharedArray] = []
        self.items: list = self._chunks

    @staticmethod
    def _eligible(chunk) -> bool:
        return (
            isinstance(chunk, np.ndarray)
            and chunk.dtype.kind in "fiu"
            and chunk.nbytes >= _MIN_SHARED_BYTES
        )

    def __enter__(self) -> "SharedChunks":
        directory = shm_dir() if self._enabled else None
        if directory is None:
            return self
        items: list = []
        try:
            for chunk in self._chunks:
                if self._eligible(chunk):
                    segment = SharedArray.create(chunk, directory)
                    self._segments.append(segment)
                    items.append(segment)
                else:
                    items.append(chunk)
        except OSError:
            # Directory filled up or vanished mid-flight: release what
            # was parked and fall back to pickling everything.
            self._release()
            return self
        self.items = items
        return self

    def __exit__(self, *exc_info) -> None:
        self._release()

    def _release(self) -> None:
        for segment in self._segments:
            segment.unlink()
        self._segments = []
        self.items = self._chunks
