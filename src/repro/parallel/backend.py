"""Execution backends: serial, thread pool, process pool.

The paper's pipeline is dominated by embarrassingly parallel passes —
density evaluation over dataset chunks, the nested-loop detector's
outer block scan — and this module decides *how* those passes execute.
Callers never touch ``concurrent.futures`` directly (repro-lint rule
RL008 forbids it outside this package); they ask for a backend by
worker count and kind and hand it an ordered list of tasks.

Worker-count resolution is layered so one knob reaches every hot path:

1. an explicit ``n_jobs`` argument on the estimator / sampler /
   detector wins;
2. otherwise the ambient default installed by :func:`use_n_jobs`
   (what ``repro run --n-jobs`` and the pipelines set) applies;
3. otherwise the ``REPRO_N_JOBS`` environment variable;
4. otherwise ``1`` — the serial path.

Negative values count from the machine size (``-1`` = all cores). The
backend *kind* defaults to threads — NumPy releases the GIL inside the
kernels that dominate these passes, and threads share the dataset with
zero copying — and can be switched to processes with the
``REPRO_PARALLEL_BACKEND`` environment variable or an explicit
``backend=`` argument for workloads that are genuinely
Python-bound.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator, Sequence, TypeVar

from repro.exceptions import ParameterError

__all__ = [
    "BACKEND_ENV",
    "N_JOBS_ENV",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "get_backend",
    "resolve_n_jobs",
    "use_n_jobs",
]

#: Environment variable overriding the default worker count.
N_JOBS_ENV = "REPRO_N_JOBS"

#: Environment variable overriding the default backend kind.
BACKEND_ENV = "REPRO_PARALLEL_BACKEND"

_T = TypeVar("_T")
_R = TypeVar("_R")

_DEFAULT_N_JOBS: ContextVar[int | None] = ContextVar(
    "repro_parallel_default_n_jobs", default=None
)


def resolve_n_jobs(n_jobs: int | None = None) -> int:
    """Resolve an ``n_jobs`` request to a concrete worker count.

    Parameters
    ----------
    n_jobs:
        Explicit request: a positive count, a negative count relative
        to the machine (``-1`` = all cores), or ``None`` to defer to
        the ambient default (:func:`use_n_jobs`), then the
        ``REPRO_N_JOBS`` environment variable, then ``1``.

    Returns
    -------
    int
        A worker count ``>= 1``.
    """
    if n_jobs is None:
        n_jobs = _DEFAULT_N_JOBS.get()
    if n_jobs is None:
        raw = os.environ.get(N_JOBS_ENV, "").strip()
        if raw:
            try:
                n_jobs = int(raw)
            except ValueError:
                raise ParameterError(
                    f"{N_JOBS_ENV} must be an integer; got {raw!r}."
                ) from None
        else:
            n_jobs = 1
    n_jobs = int(n_jobs)
    if n_jobs < 0:
        n_jobs = max(1, (os.cpu_count() or 1) + 1 + n_jobs)
    if n_jobs == 0:
        raise ParameterError(
            "n_jobs must be >= 1, or negative to count from the machine "
            "size (-1 = all cores); got 0."
        )
    return n_jobs


@contextmanager
def use_n_jobs(n_jobs: int | None) -> Iterator[None]:
    """Install ``n_jobs`` as the ambient default for a ``with`` block.

    Everything inside the block that resolves ``n_jobs=None`` — the
    default of every estimator, sampler and detector — picks this value
    up, which is how one ``--n-jobs`` flag reaches each hot path of an
    experiment without threading a parameter through every constructor.
    Built on a context variable, so concurrent threads and tasks never
    observe each other's defaults; worker tasks run under
    ``use_n_jobs(1)`` so parallelism never nests by accident.

    Parameters
    ----------
    n_jobs:
        The default worker count to install (``None`` reverts to the
        environment/serial resolution).
    """
    token = _DEFAULT_N_JOBS.set(n_jobs)
    try:
        yield
    finally:
        _DEFAULT_N_JOBS.reset(token)


class ExecutionBackend:
    """Maps a function over an ordered task list; results keep order."""

    kind: str = "abstract"
    n_jobs: int = 1

    def map(
        self, func: Callable[[_T], _R], items: Sequence[_T]
    ) -> list[_R]:
        """Apply ``func`` to every item, returning results in order.

        Parameters
        ----------
        func:
            The task function. For the process backend it must be
            picklable (a module-level function, a ``functools.partial``
            of one, or a bound method of a picklable object).
        items:
            The ordered task inputs.
        """
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """In-caller execution: a plain loop, no worker machinery at all."""

    kind = "serial"
    n_jobs = 1

    def map(self, func, items):
        return [func(item) for item in items]


class ThreadBackend(ExecutionBackend):
    """Thread-pool execution: shared memory, no pickling.

    The default parallel backend. NumPy's inner loops (the kernel-sum
    in density evaluation, the pairwise-distance blocks of the outlier
    detector) release the GIL, so threads scale on multicore machines
    while sharing the dataset for free.

    Parameters
    ----------
    n_jobs:
        Maximum number of worker threads.
    """

    kind = "thread"

    def __init__(self, n_jobs: int) -> None:
        self.n_jobs = int(n_jobs)

    def map(self, func, items):
        items = list(items)
        if len(items) <= 1:
            return [func(item) for item in items]
        workers = min(self.n_jobs, len(items))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(func, items))


class ProcessBackend(ExecutionBackend):
    """Process-pool execution: true CPU parallelism, pickled tasks.

    For passes that are Python-bound rather than NumPy-bound. Each task
    ships its function and arguments to the worker by pickling — for
    chunk maps that includes the chunk — so prefer the thread backend
    unless profiling says otherwise.

    Parameters
    ----------
    n_jobs:
        Maximum number of worker processes.
    """

    kind = "process"

    def __init__(self, n_jobs: int) -> None:
        self.n_jobs = int(n_jobs)

    def map(self, func, items):
        items = list(items)
        if len(items) <= 1:
            return [func(item) for item in items]
        workers = min(self.n_jobs, len(items))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(func, items))


_BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def get_backend(
    n_jobs: int | None = None, backend: str | None = None
) -> ExecutionBackend:
    """Pick the execution backend for a resolved worker count.

    Parameters
    ----------
    n_jobs:
        Worker-count request, resolved via :func:`resolve_n_jobs`.
        A resolved count of ``1`` always yields the serial backend.
    backend:
        Backend kind (``"serial"``, ``"thread"``, ``"process"``);
        defaults to the ``REPRO_PARALLEL_BACKEND`` environment variable
        or, failing that, ``"thread"``.
    """
    count = resolve_n_jobs(n_jobs)
    kind = backend or os.environ.get(BACKEND_ENV, "").strip() or "thread"
    if kind not in _BACKENDS:
        raise ParameterError(
            f"unknown parallel backend {kind!r}; "
            f"choose from {sorted(_BACKENDS)}."
        )
    if count == 1 or kind == "serial":
        return SerialBackend()
    return _BACKENDS[kind](count)
