"""repro.parallel: the execution-backend layer for hot dataset passes.

The paper's pitch is speed — fit a density estimator in one pass, then
mine a small sample — and this package makes the per-pass work scale
with the machine. It has two layers:

* :mod:`repro.parallel.backend` — serial / thread / process execution
  backends, worker-count resolution (explicit ``n_jobs`` argument →
  :func:`use_n_jobs` ambient default → ``REPRO_N_JOBS`` environment
  variable → serial), and backend-kind selection
  (``REPRO_PARALLEL_BACKEND``, default threads).
* :mod:`repro.parallel.map` — :func:`parallel_map_chunks`, the
  order-preserving chunk fan-out that merges every worker's
  :class:`repro.obs.Recorder` counters back into the caller's ambient
  recorder.

The determinism contract: results are byte-identical for any
``n_jobs``. Parallel passes only run deterministic per-chunk work
(density evaluation, block distance counts); every random draw stays on
the caller's single main-process generator, consumed in stream order.

Direct use of ``multiprocessing`` / ``concurrent.futures`` elsewhere in
the library is forbidden by repro-lint rule RL008 — new parallel code
goes through this package so counters, determinism and worker policy
stay in one place.
"""

from repro.parallel.backend import (
    BACKEND_ENV,
    N_JOBS_ENV,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
    resolve_n_jobs,
    use_n_jobs,
)
from repro.parallel.map import parallel_map_chunks
from repro.parallel.shm import (
    SHM_DIR_ENV,
    SharedArray,
    SharedChunks,
    resolve_chunk,
    shm_dir,
)

__all__ = [
    "BACKEND_ENV",
    "N_JOBS_ENV",
    "SHM_DIR_ENV",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "SharedArray",
    "SharedChunks",
    "ThreadBackend",
    "get_backend",
    "parallel_map_chunks",
    "resolve_chunk",
    "resolve_n_jobs",
    "shm_dir",
    "use_n_jobs",
]
