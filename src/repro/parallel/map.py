"""Order-preserving parallel chunk map with observability aggregation.

:func:`parallel_map_chunks` is the one primitive the library's hot
passes build on: apply a deterministic function to an ordered list of
dataset chunks, fan the work out to an execution backend, and return
the results *in submission order* so downstream concatenation
reproduces the serial stream layout byte for byte.

Two contracts make parallelism invisible to the rest of the system:

* **Determinism** — tasks must be pure functions of their chunk (all
  random draws stay on the caller's single generator), so the merged
  output is identical for every ``n_jobs``.
* **Observability** — each task runs under a private
  :class:`repro.obs.Recorder`; its counter deltas (``kernel_evals``,
  ``distance_evals``, ...) are merged back into the caller's ambient
  recorder after the fan-in, inside whatever phase span is currently
  open. When the caller is actively tracing, each task's span tree
  (wrapped in a ``worker_task`` span tagged with its worker slot and
  chunk index) and its histograms ship back too, adopted in submission
  order — so the merged trace, like the counters, is deterministic for
  any worker count. Manifests therefore report the same counters no
  matter how many workers ran, and worker counts are never lost to the
  thread-local context.

Tasks additionally run under ``use_n_jobs(1)``, so an estimator that
would itself fan out (e.g. a KDE whose ``evaluate`` chunks its queries)
stays serial inside a worker — parallelism never nests by accident.
The caller's ambient fault policy is likewise captured at fan-out and
installed in every worker (context variables do not cross process
boundaries on their own), so any stream a task wraps is hardened the
same way it would be serially — and any quarantine counts it produces
merge back like every other counter.
"""

from __future__ import annotations

from contextlib import contextmanager
from functools import partial
from typing import Callable, Iterable, Iterator, TypeVar

from repro.faults.policy import RowQuarantine, get_fault_policy, use_fault_policy
from repro.obs import Recorder, get_recorder, use_recorder
from repro.parallel.backend import get_backend, use_n_jobs
from repro.parallel.shm import SharedChunks, resolve_chunk

__all__ = ["parallel_map_chunks"]

_T = TypeVar("_T")
_R = TypeVar("_R")


@contextmanager
def _worker_context(
    policy: RowQuarantine, recorder: Recorder
) -> Iterator[None]:
    """Install the worker-local ambient context; always restore priors.

    One task's context must never outlive the task: under the serial
    and thread backends the installing thread is (or shares state with)
    the coordinator, and under the process backend the worker process
    is reused for the next task. Every installer below is token-based
    (``ContextVar.set`` returning a reset token, reset in a
    ``finally``), so the prior recorder / fault policy / worker-count
    default are restored even when the task raises — the exact
    coordinator-visible-state leak RA009 flags for non-harness code.
    """
    with use_n_jobs(1), use_recorder(recorder), use_fault_policy(policy):
        yield


def _run_task(
    func: Callable[[_T], _R],
    policy: RowQuarantine,
    collect: bool,
    n_workers: int,
    indexed_item: tuple[int, _T],
) -> tuple[_R, dict]:
    """Run one task under a fresh recorder; return (result, telemetry).

    The telemetry dict always carries the worker recorder's counters;
    when the caller is tracing (``collect``), it additionally carries
    the task's span tree — wrapped in a ``worker_task`` span whose
    ``worker`` attribute is the task's deterministic worker slot
    (``index % n_workers``) — and its serialised histograms.
    """
    index, item = indexed_item
    # Shared-memory handles (process backend) map their segment here;
    # plain chunks pass through untouched.
    item = resolve_chunk(item)
    recorder = Recorder()
    with _worker_context(policy, recorder):
        if collect:
            with recorder.phase(
                "worker_task", worker=index % max(1, n_workers), chunk=index
            ):
                result = func(item)
        else:
            result = func(item)
    state: dict = {"counters": recorder.counters}
    if collect:
        state["spans"] = [span.to_dict() for span in recorder.spans]
        state["histograms"] = {
            name: hist.to_dict()
            for name, hist in recorder.histograms.items()
        }
    return result, state


def parallel_map_chunks(
    func: Callable[[_T], _R],
    chunks: Iterable[_T],
    *,
    n_jobs: int | None = None,
    backend: str | None = None,
) -> list[_R]:
    """Apply ``func`` to every chunk, in parallel, preserving order.

    Parameters
    ----------
    func:
        Deterministic task function. It must not draw from a shared
        random generator (workers may run in any order); with the
        process backend it must also be picklable.
    chunks:
        Ordered task inputs (typically dataset chunks or block
        offsets). The result list matches this order exactly.
    n_jobs:
        Worker-count request; ``None`` defers to the ambient default,
        the ``REPRO_N_JOBS`` environment variable, then ``1`` (see
        :func:`repro.parallel.resolve_n_jobs`).
    backend:
        Backend kind override (``"serial"``, ``"thread"``,
        ``"process"``); see :func:`repro.parallel.get_backend`.

    Returns
    -------
    list
        ``[func(chunk) for chunk in chunks]``, computed by the chosen
        backend, with every worker's recorder counters merged into the
        caller's ambient recorder.
    """
    ambient = get_recorder()
    engine = get_backend(n_jobs, backend)
    # With the process backend, park large ndarray chunks in shared
    # memory so workers map them instead of unpickling a copy; the
    # segments are unlinked as soon as the fan-in completes. Thread and
    # serial backends already share address space, so sharing is
    # skipped (`enabled=False` hands back the original chunks).
    with SharedChunks(chunks, enabled=engine.kind == "process") as shared:
        pairs = engine.map(
            partial(
                _run_task,
                func,
                get_fault_policy(),
                ambient.enabled,
                engine.n_jobs,
            ),
            list(enumerate(shared.items)),
        )
    merged: dict[str, float] = {}
    for _, state in pairs:
        for name, value in state["counters"].items():
            merged[name] = merged.get(name, 0) + value
    for name in sorted(merged):
        ambient.count(name, merged[name])
    # Adopt spans and fold histograms in submission order, so the merged
    # trace is identical for any worker count and backend.
    for _, state in pairs:
        if "spans" in state:
            ambient.adopt_spans(state["spans"])
        if "histograms" in state:
            ambient.merge_histograms(state["histograms"])
    return [result for result, _ in pairs]
