"""Order-preserving parallel chunk map with observability aggregation.

:func:`parallel_map_chunks` is the one primitive the library's hot
passes build on: apply a deterministic function to an ordered list of
dataset chunks, fan the work out to an execution backend, and return
the results *in submission order* so downstream concatenation
reproduces the serial stream layout byte for byte.

Two contracts make parallelism invisible to the rest of the system:

* **Determinism** — tasks must be pure functions of their chunk (all
  random draws stay on the caller's single generator), so the merged
  output is identical for every ``n_jobs``.
* **Observability** — each task runs under a private
  :class:`repro.obs.Recorder`; its counter deltas (``kernel_evals``,
  ``distance_evals``, ...) are merged back into the caller's ambient
  recorder after the fan-in, inside whatever phase span is currently
  open. Manifests therefore report the same counters no matter how
  many workers ran, and worker counts are never lost to the
  thread-local context.

Tasks additionally run under ``use_n_jobs(1)``, so an estimator that
would itself fan out (e.g. a KDE whose ``evaluate`` chunks its queries)
stays serial inside a worker — parallelism never nests by accident.
The caller's ambient fault policy is likewise captured at fan-out and
installed in every worker (context variables do not cross process
boundaries on their own), so any stream a task wraps is hardened the
same way it would be serially — and any quarantine counts it produces
merge back like every other counter.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Iterable, TypeVar

from repro.faults.policy import RowQuarantine, get_fault_policy, use_fault_policy
from repro.obs import Recorder, get_recorder, use_recorder
from repro.parallel.backend import get_backend, use_n_jobs

__all__ = ["parallel_map_chunks"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def _run_task(
    func: Callable[[_T], _R], policy: RowQuarantine, item: _T
) -> tuple[_R, dict]:
    """Run one task under a fresh recorder; return (result, counters)."""
    recorder = Recorder()
    with use_n_jobs(1), use_recorder(recorder), use_fault_policy(policy):
        result = func(item)
    return result, recorder.counters


def parallel_map_chunks(
    func: Callable[[_T], _R],
    chunks: Iterable[_T],
    *,
    n_jobs: int | None = None,
    backend: str | None = None,
) -> list[_R]:
    """Apply ``func`` to every chunk, in parallel, preserving order.

    Parameters
    ----------
    func:
        Deterministic task function. It must not draw from a shared
        random generator (workers may run in any order); with the
        process backend it must also be picklable.
    chunks:
        Ordered task inputs (typically dataset chunks or block
        offsets). The result list matches this order exactly.
    n_jobs:
        Worker-count request; ``None`` defers to the ambient default,
        the ``REPRO_N_JOBS`` environment variable, then ``1`` (see
        :func:`repro.parallel.resolve_n_jobs`).
    backend:
        Backend kind override (``"serial"``, ``"thread"``,
        ``"process"``); see :func:`repro.parallel.get_backend`.

    Returns
    -------
    list
        ``[func(chunk) for chunk in chunks]``, computed by the chosen
        backend, with every worker's recorder counters merged into the
        caller's ambient recorder.
    """
    pairs = get_backend(n_jobs, backend).map(
        partial(_run_task, func, get_fault_policy()), list(chunks)
    )
    merged: dict[str, float] = {}
    for _, counters in pairs:
        for name, value in counters.items():
            merged[name] = merged.get(name, 0) + value
    ambient = get_recorder()
    for name in sorted(merged):
        ambient.count(name, merged[name])
    return [result for result, _ in pairs]
