"""Shared utilities: validation, scaling, streaming, geometry, heaps."""

from repro.utils.validation import (
    check_array,
    check_fraction,
    check_positive,
    check_random_state,
)
from repro.utils.scaling import MinMaxScaler
from repro.utils.streams import DataStream, PassCounter, as_stream
from repro.utils.filestreams import CsvFileStream, NpyFileStream
from repro.utils.ascii_plot import line_plot, scatter_plot
from repro.utils.geometry import (
    ball_volume,
    pairwise_sq_distances,
    sq_distances_to,
)
from repro.utils.heaps import IndexedMinHeap

__all__ = [
    "check_array",
    "check_fraction",
    "check_positive",
    "check_random_state",
    "MinMaxScaler",
    "DataStream",
    "PassCounter",
    "as_stream",
    "NpyFileStream",
    "CsvFileStream",
    "scatter_plot",
    "line_plot",
    "ball_volume",
    "pairwise_sq_distances",
    "sq_distances_to",
    "IndexedMinHeap",
]
