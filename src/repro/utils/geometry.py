"""Geometric helpers: distances and ball volumes.

The outlier detector integrates density over Euclidean balls and the
clustering code needs fast pairwise distances; both live here so the
formulas are tested once.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "ball_volume",
    "pairwise_sq_distances",
    "sq_distances_to",
]


def ball_volume(radius: float, n_dims: int) -> float:
    """Volume of a Euclidean ball of ``radius`` in ``n_dims`` dimensions.

    Uses the closed form ``pi^(d/2) / Gamma(d/2 + 1) * r^d``.

    >>> round(ball_volume(1.0, 2), 6)  # unit disk
    3.141593
    """
    if n_dims < 1:
        raise ValueError(f"n_dims must be >= 1; got {n_dims}.")
    if radius < 0:
        raise ValueError(f"radius must be >= 0; got {radius}.")
    unit = math.pi ** (n_dims / 2.0) / math.gamma(n_dims / 2.0 + 1.0)
    return unit * radius**n_dims


def pairwise_sq_distances(points: np.ndarray) -> np.ndarray:
    """All-pairs squared Euclidean distances, shape ``(n, n)``.

    Computed via the expansion ``|x-y|^2 = |x|^2 + |y|^2 - 2 x.y`` with a
    clip at zero to absorb floating-point negatives on the diagonal.
    """
    sq_norms = np.einsum("ij,ij->i", points, points)
    gram = points @ points.T
    dists = sq_norms[:, None] + sq_norms[None, :] - 2.0 * gram
    np.maximum(dists, 0.0, out=dists)
    return dists


def sq_distances_to(points: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Squared distances from each of ``points`` to each of ``targets``.

    Returns shape ``(len(points), len(targets))``.
    """
    p_norms = np.einsum("ij,ij->i", points, points)
    t_norms = np.einsum("ij,ij->i", targets, targets)
    dists = p_norms[:, None] + t_norms[None, :] - 2.0 * (points @ targets.T)
    np.maximum(dists, 0.0, out=dists)
    return dists
