"""Dataset-pass abstraction.

The paper's efficiency claims are phrased in *dataset passes*: one pass to
fit the density estimator, one (or two) more to draw the sample / verify
outliers. :class:`DataStream` makes those passes explicit — algorithms
iterate chunks rather than indexing an array — and :class:`PassCounter`
lets tests assert that an algorithm really performed the number of passes
it advertises.

Every stream is *hardened*: rows with invalid values are handled by a
:class:`repro.faults.RowQuarantine` policy (strict raise / quarantine /
repair), bound at construction from the ``fault_policy`` argument or the
ambient :func:`repro.faults.use_fault_policy` context. The in-memory
stream applies the policy once, chunk by chunk, at construction — so
``n_points`` always equals the number of rows the stream delivers per
pass, the invariant samplers rely on when pre-allocating per-row
buffers and masks keyed by stream offsets.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import DataValidationError
from repro.obs import get_recorder
from repro.utils.validation import check_array

__all__ = [
    "DataStream",
    "PassCounter",
    "as_stream",
]


class DataStream:
    """A re-iterable, chunked view of an in-memory dataset.

    Parameters
    ----------
    data:
        Array-like of shape ``(n, d)``.
    chunk_size:
        Number of rows yielded per chunk. The last chunk may be smaller.
    fault_policy:
        How invalid (NaN/Inf) rows are handled: a mode name
        (``"strict"``, ``"quarantine"``, ``"repair"``), a
        :class:`repro.faults.RowQuarantine`, or ``None`` to bind the
        ambient policy (default strict — identical behaviour to the
        historical unconditional validation). The policy is applied
        chunk-wise at construction, so iteration always yields clean
        chunks and ``n_points`` counts surviving rows only.

    Notes
    -----
    The class models a dataset that is too large to process at once: code
    written against it performs sequential passes only. For this
    reproduction the backing store is an in-memory array, but any
    out-of-core source exposing the same iteration contract would work.
    """

    def __init__(
        self, data, chunk_size: int = 65536, fault_policy=None
    ) -> None:
        # Imported lazily: repro.faults wraps streams, so importing it at
        # module scope would be circular.
        from repro.faults.policy import resolve_fault_policy

        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1; got {chunk_size}.")
        self.chunk_size = int(chunk_size)
        policy = resolve_fault_policy(fault_policy)
        self.fault_policy = policy
        if policy.mode == "strict" and policy.max_abs is None:
            self._data = check_array(data, name="data")
        else:
            self._data = self._sanitize(
                check_array(data, name="data", allow_nonfinite=True), policy
            )
        self.n_points = self._data.shape[0]
        self.n_dims = self._data.shape[1]
        self.passes = 0

    def _sanitize(self, arr: np.ndarray, policy) -> np.ndarray:
        """Apply the fault policy chunk-wise (quarantine/repair semantics
        match what a chunked pass over the same data would produce)."""
        parts = []
        with get_recorder().phase("validate") as span:
            for start in range(0, arr.shape[0], self.chunk_size):
                chunk = arr[start : start + self.chunk_size]
                parts.append(
                    policy.apply(chunk, origin="data", start=start)
                )
            clean = np.vstack(parts) if parts else arr
            span.set(
                rows_in=int(arr.shape[0]),
                rows_out=int(clean.shape[0]),
                policy=policy.mode,
            )
        if clean.shape[0] == 0:
            raise DataValidationError(
                "every row was quarantined; the dataset holds no valid "
                "rows under the configured fault policy."
            )
        return np.ascontiguousarray(clean)

    def __iter__(self) -> Iterator[np.ndarray]:
        self.passes += 1
        recorder = get_recorder()
        recorder.count("data_passes")
        for start in range(0, self.n_points, self.chunk_size):
            chunk = self._data[start : start + self.chunk_size]
            recorder.count("points_seen", chunk.shape[0])
            recorder.observe("stream_chunk_rows", chunk.shape[0])
            yield chunk

    def __len__(self) -> int:
        return self.n_points

    def iter_with_offsets(self) -> Iterator[tuple[int, np.ndarray]]:
        """Like ``__iter__`` but also yields the row offset of each chunk."""
        self.passes += 1
        recorder = get_recorder()
        recorder.count("data_passes")
        for start in range(0, self.n_points, self.chunk_size):
            chunk = self._data[start : start + self.chunk_size]
            recorder.count("points_seen", chunk.shape[0])
            recorder.observe("stream_chunk_rows", chunk.shape[0])
            yield start, chunk

    def materialize(self) -> np.ndarray:
        """Return the full dataset as one array (counts as one pass)."""
        self.passes += 1
        recorder = get_recorder()
        recorder.count("data_passes")
        recorder.count("points_seen", self.n_points)
        return self._data

    # -- shard support (see repro.sharding) ----------------------------------

    def chunk_sizes(self) -> tuple[int, ...]:
        """Surviving-row count of every chunk one pass would yield.

        Bookkeeping, not a scan: computed from the stream's metadata,
        so it is not counted in ``passes`` or ``data_passes``. A
        :class:`repro.sharding.ShardPlan` uses it to split the chunk
        sequence across shards without perturbing chunk boundaries.
        """
        return tuple(
            min(self.chunk_size, self.n_points - start)
            for start in range(0, self.n_points, self.chunk_size)
        )

    def iter_chunk_range(
        self, lo: int, hi: int
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(offset, chunk)`` for chunk indices ``[lo, hi)``.

        The offsets and chunk contents are byte-identical to the
        corresponding slice of :meth:`iter_with_offsets`. Per-chunk
        effects (``points_seen``, the ``stream_chunk_rows`` histogram)
        are recorded exactly as a full pass would record them, but the
        pass itself is owned by the coordinating shard scan: neither
        ``passes`` nor ``data_passes`` is bumped here (see
        :mod:`repro.sharding`).
        """
        recorder = get_recorder()
        for start in range(
            lo * self.chunk_size, min(hi * self.chunk_size, self.n_points),
            self.chunk_size,
        ):
            chunk = self._data[start : start + self.chunk_size]
            recorder.count("points_seen", chunk.shape[0])
            recorder.observe("stream_chunk_rows", chunk.shape[0])
            yield start, chunk


class PassCounter:
    """Context helper recording how many passes a block of code performed.

    Examples
    --------
    >>> stream = as_stream([[0.0], [1.0]])
    >>> with PassCounter(stream) as counter:
    ...     _ = [chunk for chunk in stream]
    >>> counter.passes
    1
    """

    def __init__(self, stream: DataStream) -> None:
        self._stream = stream
        self._start = 0
        self.passes = 0

    def __enter__(self) -> "PassCounter":
        self._start = self._stream.passes
        return self

    def __exit__(self, *exc_info) -> None:
        self.passes = self._stream.passes - self._start


def as_stream(data, chunk_size: int = 65536) -> DataStream:
    """Coerce ``data`` to a :class:`DataStream` (no-op if it already is one).

    A freshly wrapped array is validated under the *ambient* fault
    policy (see :func:`repro.faults.use_fault_policy`); an existing
    stream keeps whatever policy it was built with.
    """
    if isinstance(data, DataStream):
        return data
    if data is None:
        raise DataValidationError(
            "no input given: pass a (n_points, n_dims) array as data, or a "
            "DataStream via the stream keyword."
        )
    return DataStream(data, chunk_size=chunk_size)
