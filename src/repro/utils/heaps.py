"""An indexed min-heap supporting decrease/increase-key.

The CURE-style hierarchical clusterer keeps every live cluster keyed by
the distance to its current nearest neighbour; merges must update keys of
arbitrary entries, which the stdlib ``heapq`` cannot do without lazy
deletion bookkeeping. This class implements the classic array heap with a
position index so updates are O(log n).
"""

from __future__ import annotations

from typing import Hashable

from repro.obs import get_recorder

__all__ = ["IndexedMinHeap"]


class IndexedMinHeap:
    """Min-heap over (key, item) pairs with O(log n) arbitrary updates.

    Items must be hashable and unique. ``push`` on an existing item
    behaves as an update.
    """

    def __init__(self) -> None:
        self._keys: list[float] = []
        self._items: list[Hashable] = []
        self._pos: dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._pos

    def key_of(self, item: Hashable) -> float:
        """Current key of ``item`` (KeyError if absent)."""
        return self._keys[self._pos[item]]

    def push(self, item: Hashable, key: float) -> None:
        """Insert ``item`` with ``key``, or update its key if present."""
        get_recorder().count("heap_pushes")
        if item in self._pos:
            self.update(item, key)
            return
        self._keys.append(key)
        self._items.append(item)
        self._pos[item] = len(self._items) - 1
        self._sift_up(len(self._items) - 1)

    def update(self, item: Hashable, key: float) -> None:
        """Change the key of an existing item."""
        idx = self._pos[item]
        old = self._keys[idx]
        self._keys[idx] = key
        if key < old:
            self._sift_up(idx)
        elif key > old:
            self._sift_down(idx)

    def peek(self) -> tuple[Hashable, float]:
        """Return (item, key) with the minimum key without removing it."""
        if not self._items:
            raise IndexError("peek from an empty heap")
        return self._items[0], self._keys[0]

    def pop(self) -> tuple[Hashable, float]:
        """Remove and return the (item, key) pair with minimum key."""
        if not self._items:
            raise IndexError("pop from an empty heap")
        item, key = self._items[0], self._keys[0]
        self._remove_at(0)
        return item, key

    def remove(self, item: Hashable) -> None:
        """Remove an arbitrary item."""
        self._remove_at(self._pos[item])

    # -- internals ----------------------------------------------------------

    def _remove_at(self, idx: int) -> None:
        last = len(self._items) - 1
        self._swap(idx, last)
        removed = self._items.pop()
        self._keys.pop()
        del self._pos[removed]
        if idx <= last - 1 and self._items:
            # The element moved into `idx` may need to travel either way.
            self._sift_down(idx)
            self._sift_up(idx)

    def _swap(self, i: int, j: int) -> None:
        if i == j:
            return
        self._items[i], self._items[j] = self._items[j], self._items[i]
        self._keys[i], self._keys[j] = self._keys[j], self._keys[i]
        self._pos[self._items[i]] = i
        self._pos[self._items[j]] = j

    def _sift_up(self, idx: int) -> None:
        while idx > 0:
            parent = (idx - 1) // 2
            if self._keys[idx] < self._keys[parent]:
                self._swap(idx, parent)
                idx = parent
            else:
                break

    def _sift_down(self, idx: int) -> None:
        size = len(self._items)
        while True:
            left = 2 * idx + 1
            right = left + 1
            smallest = idx
            if left < size and self._keys[left] < self._keys[smallest]:
                smallest = left
            if right < size and self._keys[right] < self._keys[smallest]:
                smallest = right
            if smallest == idx:
                break
            self._swap(idx, smallest)
            idx = smallest
