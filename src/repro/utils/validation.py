"""Input validation helpers used across the library.

These keep the validation rules in one place so every estimator rejects
bad input with the same, descriptive error messages.
"""

from __future__ import annotations

import numbers

import numpy as np
from numpy.typing import ArrayLike, DTypeLike

from repro.exceptions import DataValidationError, ParameterError

__all__ = [
    "RandomStateLike",
    "check_array",
    "check_random_state",
    "check_positive",
    "check_fraction",
]

#: Anything :func:`check_random_state` accepts as a randomness source.
RandomStateLike = (
    int | np.random.Generator | np.random.RandomState | None
)


def check_array(
    data: ArrayLike,
    *,
    name: str = "data",
    min_rows: int = 1,
    allow_1d: bool = False,
    dtype: DTypeLike = np.float64,
    allow_nonfinite: bool = False,
) -> np.ndarray:
    """Validate and coerce ``data`` into a 2-D float array.

    Parameters
    ----------
    data:
        Anything convertible to a numpy array of shape ``(n, d)``. A 1-D
        array is accepted when ``allow_1d`` is true and is reshaped to a
        single column.
    name:
        Name used in error messages.
    min_rows:
        Minimum number of rows required.
    allow_1d:
        Accept a 1-D array and reshape it to a single column.
    dtype:
        Target dtype of the returned array.
    allow_nonfinite:
        Skip the NaN/Inf check. Only the stream hardening layer should
        pass true — it routes the dirty rows through a
        :class:`repro.faults.RowQuarantine` policy instead of failing.

    Returns
    -------
    numpy.ndarray
        A C-contiguous ``(n, d)`` array of ``dtype``.

    Raises
    ------
    DataValidationError
        If the array is empty, has the wrong rank, or contains
        non-finite values.
    """
    arr = np.asarray(data, dtype=dtype)
    if arr.ndim == 1:
        if not allow_1d:
            raise DataValidationError(
                f"{name} must be 2-dimensional (n_points, n_dims); "
                f"got a 1-D array of length {arr.shape[0]}. "
                "Reshape with data.reshape(-1, 1) for a single feature."
            )
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise DataValidationError(
            f"{name} must be 2-dimensional (n_points, n_dims); "
            f"got ndim={arr.ndim}."
        )
    if arr.shape[0] < min_rows:
        raise DataValidationError(
            f"{name} must contain at least {min_rows} point(s); "
            f"got {arr.shape[0]}."
        )
    if arr.shape[1] < 1:
        raise DataValidationError(f"{name} must have at least one column.")
    if not allow_nonfinite and not np.isfinite(arr).all():
        raise DataValidationError(
            f"{name} contains NaN or infinite values; clean the data first."
        )
    return np.ascontiguousarray(arr)


def check_random_state(seed: RandomStateLike) -> np.random.Generator:
    """Turn ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, an existing
    ``Generator`` (returned as-is), or a legacy ``RandomState`` (wrapped).
    """
    if seed is None or isinstance(seed, numbers.Integral):
        return np.random.default_rng(seed)
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.RandomState):
        # Wrap the legacy bit generator so downstream code only ever
        # sees the Generator API.
        return np.random.default_rng(seed.randint(np.iinfo(np.int32).max))
    raise ParameterError(
        f"random_state must be None, an int, or a numpy Generator; "
        f"got {type(seed).__name__}."
    )


def check_positive(value: float, *, name: str, strict: bool = True) -> float:
    """Validate that a numeric parameter is positive (or non-negative)."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise ParameterError(f"{name} must be a real number; got {value!r}.")
    value = float(value)
    if strict and value <= 0:
        raise ParameterError(f"{name} must be > 0; got {value}.")
    if not strict and value < 0:
        raise ParameterError(f"{name} must be >= 0; got {value}.")
    return value


def check_fraction(value: float, *, name: str, inclusive: bool = True) -> float:
    """Validate that ``value`` lies in [0, 1] (or (0, 1) if not inclusive)."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise ParameterError(f"{name} must be a real number; got {value!r}.")
    value = float(value)
    if inclusive and not 0.0 <= value <= 1.0:
        raise ParameterError(f"{name} must be in [0, 1]; got {value}.")
    if not inclusive and not 0.0 < value < 1.0:
        raise ParameterError(f"{name} must be in (0, 1); got {value}.")
    return value
