"""File-backed data streams: sequential passes over on-disk datasets.

The in-memory :class:`~repro.utils.streams.DataStream` models the
pass-based access pattern; these classes make it literal for datasets
that live in files, so the one-pass estimators and two-pass samplers
run out-of-core unchanged. Both expose the same iteration contract
(``__iter__`` yields chunks, ``iter_with_offsets`` adds row offsets,
``passes`` counts traversals) and the same hardening contract as the
in-memory stream:

* every chunk is validated per pass and routed through the stream's
  :class:`repro.faults.RowQuarantine` policy — NaN/Inf rows on disk no
  longer reach the samplers unchecked (strict raises a typed error
  naming the pass and chunk offset; quarantine drops and counts;
  repair imputes from chunk statistics);
* chunk reads go through a :class:`repro.faults.RetryPolicy`, so
  transient ``OSError``/``TransientIOError`` failures are retried with
  a deterministic backoff schedule before the run is abandoned with a
  :class:`repro.exceptions.StreamReadError`;
* under the quarantine policy a construction-time pre-scan counts the
  invalid rows, so ``n_points`` equals the surviving-row count before
  the first pass — the invariant offset-keyed consumers rely on. The
  pre-scan is bookkeeping, not an algorithmic pass: it is not counted
  in ``passes`` or the ``data_passes`` counter.
"""

from __future__ import annotations

import os

import numpy as np

from repro.exceptions import DataValidationError
from repro.obs import get_recorder
from repro.utils.streams import DataStream

__all__ = [
    "NpyFileStream",
    "CsvFileStream",
]


class NpyFileStream(DataStream):
    """Chunked passes over a ``.npy`` array via memory mapping.

    The file is memory-mapped read-only; each chunk is copied out, so
    downstream code never holds references into the map.

    Parameters
    ----------
    path:
        Location of the 2-D ``.npy`` file.
    chunk_size:
        Rows delivered per chunk (the last chunk may be smaller).
    fault_policy:
        Invalid-row handling: a mode name, a
        :class:`repro.faults.RowQuarantine`, or ``None`` for the
        ambient policy (default strict).
    retry_policy:
        Retry budget for chunk reads; ``None`` uses the shared
        sleepless 3-retry default.
    """

    def __init__(
        self,
        path: str,
        chunk_size: int = 65536,
        fault_policy=None,
        retry_policy=None,
    ) -> None:
        from repro.faults.policy import resolve_fault_policy
        from repro.faults.retry import DEFAULT_RETRY_POLICY

        if not os.path.exists(path):
            raise DataValidationError(f"no data file at {path!r}.")
        mapped = np.load(path, mmap_mode="r")
        if mapped.ndim != 2:
            raise DataValidationError(
                f"{path!r} must hold a 2-D array; got ndim={mapped.ndim}."
            )
        self._mapped = mapped
        self.path = path
        self.chunk_size = int(chunk_size)
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1; got {chunk_size}.")
        self.fault_policy = resolve_fault_policy(fault_policy)
        self.retry_policy = (
            retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        )
        self._n_raw = mapped.shape[0]
        self.n_dims = mapped.shape[1]
        self.n_points = self._n_raw
        self._chunk_invalid: tuple[int, ...] | None = None
        if self.fault_policy.mode == "quarantine":
            self._chunk_invalid = self._prescan_invalid_rows()
            self.n_points = self._n_raw - sum(self._chunk_invalid)
            if self.n_points == 0:
                raise DataValidationError(
                    f"every row of {path!r} was quarantined; the file holds "
                    "no valid rows under the configured fault policy."
                )
        self.passes = 0

    def _prescan_invalid_rows(self) -> tuple[int, ...]:
        """Per-chunk invalid-row counts (no recorder effects)."""
        counts = []
        for start in range(0, self._n_raw, self.chunk_size):
            chunk = np.asarray(
                self._mapped[start : start + self.chunk_size],
                dtype=np.float64,
            )
            counts.append(self.fault_policy.count_invalid_rows(chunk))
        return tuple(counts)

    def _read_chunk(self, start: int) -> np.ndarray:
        stop = min(start + self.chunk_size, self._n_raw)
        return self.retry_policy.call(
            lambda attempt: np.asarray(
                self._mapped[start:stop], dtype=np.float64
            ),
            describe=f"read of rows [{start}, {stop}) from {self.path!r}",
        )

    def _iterate(self):
        self.passes += 1
        recorder = get_recorder()
        recorder.count("data_passes")
        out = 0
        for start in range(0, self._n_raw, self.chunk_size):
            clean = self.fault_policy.apply(
                self._read_chunk(start),
                origin=self.path,
                pass_index=self.passes,
                start=start,
            )
            recorder.count("points_seen", clean.shape[0])
            if clean.shape[0]:
                recorder.observe("stream_chunk_rows", clean.shape[0])
                yield out, clean
                out += clean.shape[0]

    def __iter__(self):
        for _, chunk in self._iterate():
            yield chunk

    def iter_with_offsets(self):
        """Yield (surviving-row offset, hardened chunk) per chunk."""
        yield from self._iterate()

    def materialize(self) -> np.ndarray:
        """All surviving rows as one array (counts as one pass)."""
        parts = [chunk for _, chunk in self._iterate()]
        if not parts:
            return np.empty((0, self.n_dims))
        return np.vstack(parts)

    # -- shard support (see repro.sharding) ----------------------------------

    def chunk_sizes(self) -> tuple[int, ...]:
        """Surviving-row count of every chunk one pass would yield.

        Bookkeeping, not a scan: under quarantine the counts come from
        the construction-time pre-scan; otherwise every raw row
        survives (strict raises mid-pass instead of dropping).
        """
        raw = [
            min(self.chunk_size, self._n_raw - start)
            for start in range(0, self._n_raw, self.chunk_size)
        ]
        if self._chunk_invalid is not None:
            return tuple(
                size - bad for size, bad in zip(raw, self._chunk_invalid)
            )
        return tuple(raw)

    def iter_chunk_range(self, lo: int, hi: int):
        """Yield ``(offset, chunk)`` for raw chunk indices ``[lo, hi)``.

        Byte-identical to the corresponding slice of
        :meth:`iter_with_offsets` — same policy application, same
        surviving-row offsets, same per-chunk recorder effects — but
        the pass bookkeeping (``passes``, ``data_passes``) is owned by
        the coordinating shard scan (see :mod:`repro.sharding`).
        """
        recorder = get_recorder()
        sizes = self.chunk_sizes()
        out = sum(sizes[:lo])
        for index in range(lo, min(hi, len(sizes))):
            start = index * self.chunk_size
            clean = self.fault_policy.apply(
                self._read_chunk(start),
                origin=self.path,
                pass_index=self.passes,
                start=start,
            )
            recorder.count("points_seen", clean.shape[0])
            if clean.shape[0]:
                recorder.observe("stream_chunk_rows", clean.shape[0])
                yield out, clean
                out += clean.shape[0]

    # -- pickling (process-backend shard workers) ----------------------------

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_mapped"] = None  # memory maps do not pickle; reopen
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._mapped = np.load(self.path, mmap_mode="r")


class CsvFileStream(DataStream):
    """Chunked passes over a headerless numeric CSV file.

    Rows are parsed lazily per pass; the whole file is never resident.
    A pre-pass at construction counts rows and validates the column
    count (analogous to a database knowing its cardinality). Under the
    quarantine policy the pre-pass additionally parses the file once to
    count invalid rows, so ``n_points`` is exact up front.

    Non-numeric cells are a fatal, typed error under the strict policy
    (as they always were); under quarantine/repair they are treated as
    missing values (NaN) and handled by the policy like any other
    invalid cell.

    Parameters
    ----------
    path:
        Location of the CSV file.
    chunk_size:
        Rows delivered per chunk (the last chunk may be smaller).
    delimiter:
        Cell separator.
    fault_policy:
        Invalid-row handling: a mode name, a
        :class:`repro.faults.RowQuarantine`, or ``None`` for the
        ambient policy (default strict).
    retry_policy:
        Retry budget for opening the file at the start of each pass;
        ``None`` uses the shared sleepless 3-retry default.
    """

    def __init__(
        self,
        path: str,
        chunk_size: int = 65536,
        delimiter: str = ",",
        fault_policy=None,
        retry_policy=None,
    ) -> None:
        from repro.faults.policy import resolve_fault_policy
        from repro.faults.retry import DEFAULT_RETRY_POLICY

        if not os.path.exists(path):
            raise DataValidationError(f"no data file at {path!r}.")
        self.path = path
        self.delimiter = delimiter
        self.chunk_size = int(chunk_size)
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1; got {chunk_size}.")
        self.fault_policy = resolve_fault_policy(fault_policy)
        self.retry_policy = (
            retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        )
        n_points = 0
        n_dims = None
        with self._open() as handle:
            for line in handle:
                if not line.strip():
                    continue
                width = line.count(delimiter) + 1
                if n_dims is None:
                    n_dims = width
                elif width != n_dims:
                    raise DataValidationError(
                        f"ragged CSV: row {n_points} has {width} columns, "
                        f"expected {n_dims}."
                    )
                n_points += 1
        if n_points == 0:
            raise DataValidationError(f"{path!r} holds no data rows.")
        self._n_raw = n_points
        self.n_dims = n_dims
        self.n_points = n_points
        self.passes = 0
        self._chunk_invalid: tuple[int, ...] | None = None
        if self.fault_policy.mode == "quarantine":
            self._chunk_invalid = tuple(
                self.fault_policy.count_invalid_rows(chunk)
                for _, chunk in self._raw_chunks()
            )
            self.n_points = n_points - sum(self._chunk_invalid)
            if self.n_points == 0:
                raise DataValidationError(
                    f"every row of {path!r} was quarantined; the file holds "
                    "no valid rows under the configured fault policy."
                )

    def _open(self):
        return self.retry_policy.call(
            lambda attempt: open(self.path),
            describe=f"open of {self.path!r}",
        )

    def _raw_chunks(self):
        """(raw row offset, parsed chunk) pairs for one file traversal."""
        buffer: list[str] = []
        start = 0
        with self._open() as handle:
            for line in handle:
                if not line.strip():
                    continue
                buffer.append(line)
                if len(buffer) == self.chunk_size:
                    yield start, self._parse(buffer)
                    start += len(buffer)
                    buffer = []
        if buffer:
            yield start, self._parse(buffer)

    def _parse(self, lines: list[str]) -> np.ndarray:
        try:
            return np.array(
                [
                    [float(cell) for cell in line.split(self.delimiter)]
                    for line in lines
                ]
            )
        except ValueError as exc:
            if self.fault_policy.mode == "strict":
                raise DataValidationError(
                    f"non-numeric cell in {self.path!r}: {exc}"
                ) from exc
            # Tolerant path: unparseable cells become NaN and are then
            # quarantined or repaired by the policy like any bad value.
            return np.array(
                [
                    [_float_or_nan(cell) for cell in line.split(self.delimiter)]
                    for line in lines
                ]
            )

    def _iterate(self):
        self.passes += 1
        recorder = get_recorder()
        recorder.count("data_passes")
        out = 0
        for start, chunk in self._raw_chunks():
            clean = self.fault_policy.apply(
                chunk,
                origin=self.path,
                pass_index=self.passes,
                start=start,
            )
            recorder.count("points_seen", clean.shape[0])
            if clean.shape[0]:
                recorder.observe("stream_chunk_rows", clean.shape[0])
                yield out, clean
                out += clean.shape[0]

    def __iter__(self):
        for _, chunk in self._iterate():
            yield chunk

    def iter_with_offsets(self):
        """Yield (surviving-row offset, hardened chunk) per chunk."""
        yield from self._iterate()

    def materialize(self) -> np.ndarray:
        """All surviving rows as one array (counts as one pass)."""
        parts = [chunk for _, chunk in self._iterate()]
        if not parts:
            return np.empty((0, self.n_dims))
        return np.vstack(parts)

    # -- shard support (see repro.sharding) ----------------------------------

    def chunk_sizes(self) -> tuple[int, ...]:
        """Surviving-row count of every chunk one pass would yield.

        Bookkeeping, not a scan: derived from the construction-time
        pre-pass (row count, and per-chunk invalid counts under
        quarantine), so no file traversal happens here.
        """
        raw = [
            min(self.chunk_size, self._n_raw - start)
            for start in range(0, self._n_raw, self.chunk_size)
        ]
        if self._chunk_invalid is not None:
            return tuple(
                size - bad for size, bad in zip(raw, self._chunk_invalid)
            )
        return tuple(raw)

    def iter_chunk_range(self, lo: int, hi: int):
        """Yield ``(offset, chunk)`` for raw chunk indices ``[lo, hi)``.

        Byte-identical to the corresponding slice of
        :meth:`iter_with_offsets`; the pass bookkeeping is owned by the
        coordinating shard scan (see :mod:`repro.sharding`). Text files
        have no row index, so reaching chunk ``lo`` still reads the
        file prefix — sharding a CSV is correctness-first; convert to
        ``.npy`` for seek-free shard reads.
        """
        recorder = get_recorder()
        sizes = self.chunk_sizes()
        out = sum(sizes[:lo])
        for index, (start, chunk) in enumerate(self._raw_chunks()):
            if index >= hi:
                break
            if index < lo:
                continue
            clean = self.fault_policy.apply(
                chunk,
                origin=self.path,
                pass_index=self.passes,
                start=start,
            )
            recorder.count("points_seen", clean.shape[0])
            if clean.shape[0]:
                recorder.observe("stream_chunk_rows", clean.shape[0])
                yield out, clean
                out += clean.shape[0]


def _float_or_nan(cell: str) -> float:
    try:
        return float(cell)
    except ValueError:
        return float("nan")
