"""File-backed data streams: sequential passes over on-disk datasets.

The in-memory :class:`~repro.utils.streams.DataStream` models the
pass-based access pattern; these classes make it literal for datasets
that live in files, so the one-pass estimators and two-pass samplers
run out-of-core unchanged. Both expose the same iteration contract
(``__iter__`` yields chunks, ``iter_with_offsets`` adds row offsets,
``passes`` counts traversals).
"""

from __future__ import annotations

import os

import numpy as np

from repro.exceptions import DataValidationError
from repro.utils.streams import DataStream

__all__ = [
    "NpyFileStream",
    "CsvFileStream",
]


class NpyFileStream(DataStream):
    """Chunked passes over a ``.npy`` array via memory mapping.

    The file is memory-mapped read-only; each chunk is copied out, so
    downstream code never holds references into the map.
    """

    def __init__(self, path: str, chunk_size: int = 65536) -> None:
        if not os.path.exists(path):
            raise DataValidationError(f"no data file at {path!r}.")
        mapped = np.load(path, mmap_mode="r")
        if mapped.ndim != 2:
            raise DataValidationError(
                f"{path!r} must hold a 2-D array; got ndim={mapped.ndim}."
            )
        self._mapped = mapped
        self.path = path
        # Deliberately skip DataStream.__init__'s materialising
        # validation; set the public fields directly.
        self.chunk_size = int(chunk_size)
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1; got {chunk_size}.")
        self.n_points = mapped.shape[0]
        self.n_dims = mapped.shape[1]
        self.passes = 0

    def __iter__(self):
        self.passes += 1
        for start in range(0, self.n_points, self.chunk_size):
            yield np.asarray(
                self._mapped[start : start + self.chunk_size],
                dtype=np.float64,
            )

    def iter_with_offsets(self):
        self.passes += 1
        for start in range(0, self.n_points, self.chunk_size):
            yield start, np.asarray(
                self._mapped[start : start + self.chunk_size],
                dtype=np.float64,
            )

    def materialize(self) -> np.ndarray:
        self.passes += 1
        return np.asarray(self._mapped, dtype=np.float64)


class CsvFileStream(DataStream):
    """Chunked passes over a headerless numeric CSV file.

    Rows are parsed lazily per pass; the whole file is never resident.
    A pre-pass at construction counts rows and validates the column
    count (analogous to a database knowing its cardinality).
    """

    def __init__(
        self, path: str, chunk_size: int = 65536, delimiter: str = ","
    ) -> None:
        if not os.path.exists(path):
            raise DataValidationError(f"no data file at {path!r}.")
        self.path = path
        self.delimiter = delimiter
        self.chunk_size = int(chunk_size)
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1; got {chunk_size}.")
        n_points = 0
        n_dims = None
        with open(path) as handle:
            for line in handle:
                if not line.strip():
                    continue
                width = line.count(delimiter) + 1
                if n_dims is None:
                    n_dims = width
                elif width != n_dims:
                    raise DataValidationError(
                        f"ragged CSV: row {n_points} has {width} columns, "
                        f"expected {n_dims}."
                    )
                n_points += 1
        if n_points == 0:
            raise DataValidationError(f"{path!r} holds no data rows.")
        self.n_points = n_points
        self.n_dims = n_dims
        self.passes = 0

    def _chunks(self):
        buffer: list[str] = []
        with open(self.path) as handle:
            for line in handle:
                if not line.strip():
                    continue
                buffer.append(line)
                if len(buffer) == self.chunk_size:
                    yield self._parse(buffer)
                    buffer = []
        if buffer:
            yield self._parse(buffer)

    def _parse(self, lines: list[str]) -> np.ndarray:
        try:
            return np.array(
                [
                    [float(cell) for cell in line.split(self.delimiter)]
                    for line in lines
                ]
            )
        except ValueError as exc:
            raise DataValidationError(
                f"non-numeric cell in {self.path!r}: {exc}"
            ) from exc

    def __iter__(self):
        self.passes += 1
        yield from self._chunks()

    def iter_with_offsets(self):
        self.passes += 1
        start = 0
        for chunk in self._chunks():
            yield start, chunk
            start += chunk.shape[0]

    def materialize(self) -> np.ndarray:
        self.passes += 1
        return np.vstack(list(self._chunks()))
