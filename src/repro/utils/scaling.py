"""Min-max scaling of datasets onto the unit hypercube.

The paper assumes the data domain is ``[0, 1]^d`` ("otherwise we can scale
the attributes", section 2.1). Density estimators fit a scaler internally
so the library accepts raw coordinates everywhere.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError
from repro.utils.validation import check_array

__all__ = ["MinMaxScaler"]


class MinMaxScaler:
    """Affine map of each attribute onto ``[0, 1]``.

    Degenerate attributes (constant columns) are mapped to ``0.5`` so
    downstream volume computations never divide by zero.

    Attributes
    ----------
    data_min_, data_max_ : numpy.ndarray
        Per-attribute extrema observed during :meth:`fit`.
    scale_ : numpy.ndarray
        Per-attribute multiplicative factor ``1 / (max - min)``.
    """

    def __init__(self) -> None:
        self.data_min_: np.ndarray | None = None
        self.data_max_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    # -- fitting -----------------------------------------------------------

    def fit(self, data) -> "MinMaxScaler":
        """Learn per-attribute extrema from ``data``."""
        arr = check_array(data, name="data")
        self.data_min_ = arr.min(axis=0)
        self.data_max_ = arr.max(axis=0)
        self._update_scale()
        return self

    def partial_fit(self, chunk) -> "MinMaxScaler":
        """Update extrema from one chunk of a streamed dataset."""
        arr = check_array(chunk, name="chunk")
        if self.data_min_ is None:
            self.data_min_ = arr.min(axis=0)
            self.data_max_ = arr.max(axis=0)
        else:
            self.data_min_ = np.minimum(self.data_min_, arr.min(axis=0))
            self.data_max_ = np.maximum(self.data_max_, arr.max(axis=0))
        self._update_scale()
        return self

    def _update_scale(self) -> None:
        span = self.data_max_ - self.data_min_
        # Constant (or sub-normal-width) columns get unit scale so the
        # reciprocal cannot overflow; transform() centres them at 0.5.
        self._degenerate = span <= np.finfo(np.float64).tiny
        safe = np.where(self._degenerate, 1.0, span)
        self.scale_ = 1.0 / safe

    # -- transforms --------------------------------------------------------

    def _require_fitted(self) -> None:
        if self.scale_ is None:
            raise NotFittedError(
                "MinMaxScaler is not fitted; call fit() or partial_fit()."
            )

    def transform(self, data) -> np.ndarray:
        """Map ``data`` onto the unit hypercube learned at fit time."""
        self._require_fitted()
        arr = check_array(data, name="data")
        out = (arr - self.data_min_) * self.scale_
        if self._degenerate.any():
            out[:, self._degenerate] = 0.5
        return out

    def inverse_transform(self, data) -> np.ndarray:
        """Map unit-cube coordinates back to the original domain."""
        self._require_fitted()
        arr = check_array(data, name="data")
        span = np.where(
            self._degenerate, 0.0, self.data_max_ - self.data_min_
        )
        return arr * span + self.data_min_

    def fit_transform(self, data) -> np.ndarray:
        """Fit on ``data`` and return its unit-cube image."""
        return self.fit(data).transform(data)

    @property
    def volume_(self) -> float:
        """Volume of the fitted bounding box in original coordinates."""
        self._require_fitted()
        span = self.data_max_ - self.data_min_
        return float(np.prod(np.where(self._degenerate, 1.0, span)))
