"""Terminal scatter plots (no plotting dependency).

The paper's Figure 3 is a picture; the examples and experiments render
the same story as character grids so the repository stays free of
graphics dependencies. Multiple point sets overlay with distinct glyphs
(later sets draw over earlier ones).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError

__all__ = [
    "DEFAULT_GLYPHS",
    "scatter_plot",
    "line_plot",
]

DEFAULT_GLYPHS = ".o*#@+x%"


def scatter_plot(
    point_sets,
    width: int = 72,
    height: int = 28,
    glyphs: str = DEFAULT_GLYPHS,
    bounds=None,
    labels=None,
) -> str:
    """Render 2-D point sets as an ASCII grid.

    Parameters
    ----------
    point_sets:
        One ``(n, 2)`` array, or a sequence of them; each set gets the
        next glyph.
    width, height:
        Character-grid size (excluding the frame).
    glyphs:
        Glyph per set, in order.
    bounds:
        Optional ``((x_min, y_min), (x_max, y_max))``; defaults to the
        joint bounding box.
    labels:
        Optional legend names, one per set.

    Examples
    --------
    >>> import numpy as np
    >>> art = scatter_plot(np.array([[0.0, 0.0], [1.0, 1.0]]),
    ...                    width=10, height=5)
    >>> art.count("\\n") >= 5
    True
    """
    if isinstance(point_sets, np.ndarray) and point_sets.ndim == 2:
        point_sets = [point_sets]
    point_sets = [np.atleast_2d(np.asarray(p, dtype=float))
                  for p in point_sets]
    if not point_sets:
        raise ParameterError("need at least one point set.")
    if any(p.shape[1] != 2 for p in point_sets if p.size):
        raise ParameterError("ascii scatter plots are 2-D only.")
    if len(point_sets) > len(glyphs):
        raise ParameterError(
            f"{len(point_sets)} point sets but only {len(glyphs)} glyphs."
        )
    if width < 2 or height < 2:
        raise ParameterError("width and height must be >= 2.")

    non_empty = [p for p in point_sets if p.size]
    if bounds is not None:
        (x_min, y_min), (x_max, y_max) = bounds
    elif non_empty:
        stacked = np.vstack(non_empty)
        x_min, y_min = stacked.min(axis=0)
        x_max, y_max = stacked.max(axis=0)
    else:
        x_min = y_min = 0.0
        x_max = y_max = 1.0
    x_span = max(x_max - x_min, 1e-12)
    y_span = max(y_max - y_min, 1e-12)

    grid = [[" "] * width for _ in range(height)]
    for glyph, pts in zip(glyphs, point_sets):
        if not pts.size:
            continue
        cols = ((pts[:, 0] - x_min) / x_span * (width - 1)).round().astype(int)
        rows = ((pts[:, 1] - y_min) / y_span * (height - 1)).round().astype(int)
        cols = np.clip(cols, 0, width - 1)
        rows = np.clip(rows, 0, height - 1)
        for col, row in zip(cols, rows):
            grid[height - 1 - row][col] = glyph  # y grows upward

    frame_top = "+" + "-" * width + "+"
    lines = [frame_top]
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append(frame_top)
    if labels:
        legend = "  ".join(
            f"{glyph}={name}" for glyph, name in zip(glyphs, labels)
        )
        lines.append(legend)
    return "\n".join(lines)


def line_plot(
    xs,
    series: dict[str, list],
    width: int = 64,
    height: int = 16,
    glyphs: str = DEFAULT_GLYPHS[1:],
) -> str:
    """Render one or more y-series against shared x values.

    A compact way to show the paper's figure shapes (found clusters vs
    noise, time vs sample size) in a terminal.
    """
    xs = np.asarray(xs, dtype=float)
    if xs.ndim != 1 or xs.size < 2:
        raise ParameterError("xs must be 1-D with at least two values.")
    if not series:
        raise ParameterError("series must be non-empty.")
    sets = []
    for values in series.values():
        values = np.asarray(values, dtype=float)
        if values.shape != xs.shape:
            raise ParameterError("every series must align with xs.")
        sets.append(np.column_stack([xs, values]))
    all_y = np.concatenate([s[:, 1] for s in sets])
    bounds = (
        (xs.min(), all_y.min()),
        (xs.max(), all_y.max() if all_y.max() > all_y.min() else all_y.min() + 1),
    )
    art = scatter_plot(
        sets,
        width=width,
        height=height,
        glyphs=glyphs,
        bounds=bounds,
        labels=list(series),
    )
    footer = (
        f"x: {xs.min():g} .. {xs.max():g}    "
        f"y: {all_y.min():g} .. {all_y.max():g}"
    )
    return art + "\n" + footer
