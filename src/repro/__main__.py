"""``python -m repro`` delegates to the CLI."""

from repro.cli import main

raise SystemExit(main())
