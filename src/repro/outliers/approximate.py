"""The paper's density-screened DB(p, k) outlier detector (section 3.2).

The idea: a DB(p, k) outlier has at most ``p`` points within distance
``k``, so its *expected* neighbour count under the density estimate,

``N'(O, k) = integral over Ball(O, k) of f``,

must be small. One pass over the data evaluates ``N'`` for every point
and keeps the ones below a slack-scaled threshold as *likely outliers*;
a second pass verifies the true neighbour count of each candidate. The
density fit itself takes one earlier pass, matching the paper's "at most
two dataset passes plus the pass that computes the density estimator".

The same screening machinery also estimates the *number* of DB(p, k)
outliers in a single pass — the paper highlights this as a cheap way to
explore ``p`` and ``k`` before committing to a full run.

Both passes consume hardened streams (see :mod:`repro.faults`): under a
quarantine policy the detector only ever sees — and reports indices
into — the surviving rows, and the screen/verify passes observe the
identical survivor set because persistent faults are keyed by chunk.
"""

from __future__ import annotations

import numpy as np

from repro.density.base import DensityEstimator
from repro.density.kde import KernelDensityEstimator
from repro.exceptions import ParameterError
from repro.obs import get_recorder
from repro.outliers.base import OutlierDetector, OutlierResult, resolve_p
from repro.utils.geometry import ball_volume, sq_distances_to
from repro.utils.streams import DataStream, as_stream
from repro.utils.validation import check_positive

__all__ = ["ApproximateOutlierDetector"]


class ApproximateOutlierDetector(OutlierDetector):
    """Density screening + exact verification for DB(p, k) outliers.

    Dataset passes: 3 — ``fit_density`` (when the estimator arrives
    unfitted), the ``screen`` scan that evaluates each point's
    approximate neighbourhood mass, and the ``verify`` scan that counts
    exact neighbours of the surviving candidates.

    Memory: O(n) — the screen heap may hold every point when the
    candidate fraction is 1; fitting is O(m) and verification keeps
    only the O(b) surviving candidates.

    Parameters
    ----------
    k:
        Neighbourhood radius.
    p:
        Neighbour-count threshold (or ``fraction`` of the dataset size).
    fraction:
        Alternative to ``p``: the threshold as a fraction of the
        dataset size (specify exactly one of the two).
    estimator:
        Density estimator; an unfitted one is fitted in the first pass.
        Defaults to the paper's 1000-kernel Epanechnikov KDE.
    slack:
        Screening keeps points with ``N'(O, k) <= slack * (p + 1)``.
        Larger slack trades verification work for recall robustness
        against density-estimation error; the default absorbs the
        kernel smoothing bias near cluster boundaries while keeping the
        candidate set tiny on realistic density landscapes. The screen
        is least reliable when ``k`` is much smaller than the kernel
        bandwidth (the smoothed density then badly overestimates the
        tiny-ball count); raise the slack in that regime.
    candidate_quantile:
        Recall safety net: the sparsest ``candidate_quantile`` fraction
        of the dataset always enters the candidate set, regardless of
        the absolute threshold. Kernel smoothing inflates the density of
        outliers that sit near cluster boundaries; the quantile floor
        keeps them screenable while the exact verification pass removes
        any false candidates it lets through.
    screen:
        ``"volume"`` approximates the ball integral as ``f(O) *
        Vol(Ball(k))`` (one density evaluation per point); ``"montecarlo"``
        integrates with ``n_mc`` samples per point (slower, tighter).
    n_mc:
        Monte-Carlo points per ball for the ``"montecarlo"`` screen.
    random_state:
        Seed or generator for the Monte-Carlo draws (and the default
        estimator's reservoir).
    """

    #: Per-phase dataset scans of detect() (audited statically by RA001).
    __n_passes__ = {"fit_density": 1, "screen": 1, "verify": 1}

    #: Per-phase peak-allocation bounds of detect() (audited by RA005).
    __space__ = {
        "fit_density": "O(m)",
        "screen": "O(n)",
        "verify": "O(b)",
    }

    def __init__(
        self,
        k: float,
        p: int | None = None,
        fraction: float | None = None,
        estimator: DensityEstimator | None = None,
        slack: float = 12.0,
        candidate_quantile: float = 0.02,
        screen: str = "volume",
        n_mc: int = 64,
        random_state=None,
    ) -> None:
        self.k = check_positive(k, name="k")
        self.p = p
        self.fraction = fraction
        self.estimator = estimator
        self.slack = check_positive(slack, name="slack")
        if not 0.0 <= candidate_quantile <= 1.0:
            raise ParameterError(
                f"candidate_quantile must be in [0, 1]; "
                f"got {candidate_quantile}."
            )
        self.candidate_quantile = float(candidate_quantile)
        if screen not in ("volume", "montecarlo"):
            raise ParameterError(
                f"screen must be 'volume' or 'montecarlo'; got {screen!r}."
            )
        self.screen = screen
        self.n_mc = int(n_mc)
        self.random_state = random_state
        self.estimator_: DensityEstimator | None = None

    # -- detection ------------------------------------------------------------

    def detect(self, data, *, stream: DataStream | None = None) -> OutlierResult:
        """Find all DB(p, k) outliers: screen, then verify exactly."""
        source = stream if stream is not None else as_stream(data)
        recorder = get_recorder()
        with recorder.phase("fit_density"):
            estimator = self._resolve_estimator(source)
        p = resolve_p(self.p, self.fraction, len(source))

        with recorder.phase("screen"):
            candidate_idx, candidate_pts = self._screen(source, estimator, p)
        with recorder.phase("verify"):
            counts = self._verify(source, candidate_pts)
        keep = counts <= p
        return OutlierResult(
            indices=candidate_idx[keep],
            neighbor_counts=counts[keep],
            n_passes=source.passes,
            n_candidates=candidate_idx.shape[0],
        )

    def estimate_outlier_count(
        self, data, *, stream: DataStream | None = None
    ) -> int:
        """One-pass estimate of the number of DB(p, k) outliers.

        Counts points whose *expected* neighbour count is at most ``p``
        — no verification pass, so this is the cheap exploration tool
        the paper describes for tuning ``p`` and ``k``.
        """
        source = stream if stream is not None else as_stream(data)
        estimator = self._resolve_estimator(source)
        p = resolve_p(self.p, self.fraction, len(source))
        count = 0
        for chunk in source:
            expected = self._expected_neighbors(chunk, estimator)
            count += int((expected <= p + 1).sum())
        return count

    # -- stages ------------------------------------------------------------------

    def _resolve_estimator(self, source: DataStream) -> DensityEstimator:
        estimator = self.estimator
        if estimator is None:
            estimator = KernelDensityEstimator(
                n_kernels=1000, random_state=self.random_state
            )
        if getattr(estimator, "n_points_", None) is None:
            estimator.fit(stream=source)
        self.estimator_ = estimator
        return estimator

    def _expected_neighbors(
        self, points: np.ndarray, estimator: DensityEstimator
    ) -> np.ndarray:
        """``N'(O, k)`` for each point, by the configured screen."""
        if self.screen == "volume":
            volume = ball_volume(self.k, points.shape[1])
            return estimator.evaluate(points) * volume
        return estimator.ball_mass(
            points, self.k, n_mc=self.n_mc, random_state=self.random_state
        )

    def _screen(
        self, source: DataStream, estimator: DensityEstimator, p: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Single pass over the data keeping likely outliers.

        Keeps the union of (a) points whose expected neighbour count is
        below the slack-scaled DB bound and (b) the
        ``candidate_quantile`` sparsest points overall — (b) is tracked
        with a bounded max-heap so one pass suffices (the dataset
        cardinality is known up front, as the paper assumes).
        """
        import heapq

        recorder = get_recorder()
        threshold = self.slack * (p + 1)
        quota = int(np.ceil(self.candidate_quantile * len(source)))
        below: dict[int, np.ndarray] = {}
        # Max-heap (via negation) of the `quota` sparsest points seen.
        sparsest: list[tuple[float, int, np.ndarray]] = []
        for start, chunk in source.iter_with_offsets():
            expected = self._expected_neighbors(chunk, estimator)
            for keep_local in np.nonzero(expected <= threshold)[0]:
                below[start + int(keep_local)] = chunk[keep_local]
            if quota:
                for local, value in enumerate(expected):
                    entry = (-float(value), start + local, chunk[local])
                    if len(sparsest) < quota:
                        heapq.heappush(sparsest, entry)
                        recorder.count("heap_pushes")
                    elif value < -sparsest[0][0]:
                        heapq.heapreplace(sparsest, entry)
                        recorder.count("heap_pushes")
        for _, idx, point in sparsest:
            below.setdefault(idx, point)
        if not below:
            return np.empty(0, dtype=np.int64), np.empty((0, source.n_dims))
        indices = np.array(sorted(below), dtype=np.int64)
        points = np.vstack([below[int(i)] for i in indices])
        return indices, points

    def _verify(
        self, source: DataStream, candidates: np.ndarray
    ) -> np.ndarray:
        """Exact neighbour counts of the candidates in one pass."""
        counts = np.zeros(candidates.shape[0], dtype=np.int64)
        if candidates.shape[0] == 0:
            return counts
        recorder = get_recorder()
        k_sq = self.k * self.k
        for chunk in source:
            recorder.count(
                "distance_evals", candidates.shape[0] * chunk.shape[0]
            )
            d = sq_distances_to(candidates, chunk)
            counts += (d <= k_sq).sum(axis=1)
        # A candidate is its own zero-distance neighbour in the scan.
        return counts - 1
