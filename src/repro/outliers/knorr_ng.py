"""Exact DB(p, k) outlier detectors (Knorr & Ng, VLDB 1998).

Two exact algorithms:

* :class:`NestedLoopOutlierDetector` — the block nested-loop algorithm:
  compare every pair of blocks, with the classic early exit once a point
  has accumulated more than ``p`` neighbours. O(n^2) worst case but
  block-at-a-time in memory, and the reference ground truth for the
  approximate detector's precision/recall numbers.
* :class:`IndexedOutlierDetector` — a kd-tree fixed-radius count; much
  faster in low dimensions, identical output.

Both materialize their input through the hardened stream layer (see
:mod:`repro.faults`): a strict policy rejects NaN/Inf input with a
located error, and a quarantine policy hands the detectors the
surviving rows only, so reported outlier indices address survivors.
"""

from __future__ import annotations

from functools import partial

import numpy as np
from scipy.spatial import cKDTree

from repro.exceptions import ParameterError
from repro.obs import get_recorder
from repro.outliers.base import OutlierDetector, OutlierResult, resolve_p
from repro.parallel import parallel_map_chunks
from repro.utils.geometry import sq_distances_to
from repro.utils.streams import DataStream, as_stream
from repro.utils.validation import check_positive

__all__ = [
    "NestedLoopOutlierDetector",
    "IndexedOutlierDetector",
]


def _count_outer_block(
    pts: np.ndarray, p: int, k_sq: float, block_size: int, a_start: int
) -> np.ndarray:
    """Neighbour counts for one outer block of the nested-loop scan.

    Outer blocks are independent — the early exit only ever resolves
    rows of the block being scanned — so each is a pure function of the
    dataset and its offset, and the outer loop parallelises with
    byte-identical results. A row's count freezes (early exit) once it
    exceeds ``p``: the row is then a known non-outlier.
    """
    n = pts.shape[0]
    a_stop = min(a_start + block_size, n)
    counts = np.zeros(a_stop - a_start, dtype=np.int64)
    open_rows = np.arange(a_start, a_stop)
    recorder = get_recorder()
    for b_start in range(0, n, block_size):
        b_stop = min(b_start + block_size, n)
        recorder.count("distance_evals", open_rows.size * (b_stop - b_start))
        d = sq_distances_to(pts[open_rows], pts[b_start:b_stop])
        within = (d <= k_sq).sum(axis=1)
        # Points do not count themselves as neighbours.
        overlap = (open_rows >= b_start) & (open_rows < b_stop)
        within = within - overlap.astype(np.int64)
        counts[open_rows - a_start] += within
        open_rows = open_rows[counts[open_rows - a_start] <= p]
        if open_rows.size == 0:
            break
    return counts


class NestedLoopOutlierDetector(OutlierDetector):
    """Block nested-loop exact DB(p, k) detection.

    Dataset passes: 1 — the dataset is materialised once; the nested
    block loops then run over the in-memory copy.

    Memory: O(n) — the nested-loop join needs the materialised dataset
    (it is the exact baseline, not a streaming method).

    Parameters
    ----------
    k:
        Neighbourhood radius (Euclidean).
    p:
        Maximum neighbour count an outlier may have; alternatively give
        ``fraction`` and ``p = fraction * n`` is used.
    fraction:
        Alternative to ``p``: the threshold as a fraction of the
        dataset size (specify exactly one of the two).
    block_size:
        Rows held in memory per block.
    n_jobs:
        Worker count for the outer block loop (``None`` defers to the
        ambient default / ``REPRO_N_JOBS``; see :mod:`repro.parallel`).
        Outer blocks are independent, so results are byte-identical
        for any value.
    """

    #: Dataset scans one detect() costs (audited statically by RA001).
    __n_passes__ = 1

    #: Peak working-memory bound of detect() (audited by RA005).
    __space__ = "O(n)"

    def __init__(
        self,
        k: float,
        p: int | None = None,
        fraction: float | None = None,
        block_size: int = 4096,
        n_jobs: int | None = None,
    ) -> None:
        self.k = check_positive(k, name="k")
        self.p = p
        self.fraction = fraction
        if block_size < 1:
            raise ParameterError(f"block_size must be >= 1; got {block_size}.")
        self.block_size = int(block_size)
        self.n_jobs = n_jobs

    def detect(self, data, *, stream: DataStream | None = None) -> OutlierResult:
        source = stream if stream is not None else as_stream(data)
        pts = source.materialize()
        n = pts.shape[0]
        p = resolve_p(self.p, self.fraction, n)
        k_sq = self.k * self.k
        block_counts = parallel_map_chunks(
            partial(_count_outer_block, pts, p, k_sq, self.block_size),
            range(0, n, self.block_size),
            n_jobs=self.n_jobs,
        )
        counts = np.concatenate(block_counts)
        outliers = np.nonzero(counts <= p)[0]
        return OutlierResult(
            indices=outliers,
            neighbor_counts=counts[outliers],
            n_passes=source.passes,
            n_candidates=n,
        )


class IndexedOutlierDetector(OutlierDetector):
    """kd-tree exact DB(p, k) detection.

    Dataset passes: 1 — one materialising scan builds the tree; the
    fixed-radius queries then run in memory.

    Memory: O(n) — the spatial index holds every point.

    Same output as the nested-loop detector; the tree turns each
    neighbourhood count into a fixed-radius query.
    """

    #: Dataset scans one detect() costs (audited statically by RA001).
    __n_passes__ = 1

    #: Peak working-memory bound of detect() (audited by RA005).
    __space__ = "O(n)"

    def __init__(
        self, k: float, p: int | None = None, fraction: float | None = None
    ) -> None:
        self.k = check_positive(k, name="k")
        self.p = p
        self.fraction = fraction

    def detect(self, data, *, stream: DataStream | None = None) -> OutlierResult:
        source = stream if stream is not None else as_stream(data)
        pts = source.materialize()
        n = pts.shape[0]
        p = resolve_p(self.p, self.fraction, n)
        tree = cKDTree(pts)
        # Count of points within k, minus one for the point itself.
        counts = (
            np.asarray(
                tree.query_ball_point(
                    pts, self.k, return_length=True, workers=-1
                ),
                dtype=np.int64,
            )
            - 1
        )
        outliers = np.nonzero(counts <= p)[0]
        return OutlierResult(
            indices=outliers,
            neighbor_counts=counts[outliers],
            n_passes=source.passes,
            n_candidates=n,
        )
