"""Cell-based exact DB(p, k) detection (Knorr & Ng, VLDB 1998).

The third exact algorithm from the cited paper, built for low
dimensions: partition the bounding box into cells of side
``k / (2 sqrt(d))`` so that

* any two points in the same cell or in Chebyshev-adjacent cells
  (layer L1) are within distance ``k`` — their counts are *guaranteed
  neighbours*;
* any two points more than ``ceil(2 sqrt(d))`` rings apart are farther
  than ``k`` — everything beyond layer L2 can be ignored.

Whole cells are then decided at once: if the guaranteed-neighbour count
already exceeds ``p`` the cell holds no outliers; if even the L2 upper
bound stays at or below ``p`` every point in the cell is an outlier;
only the remaining cells need point-level distance checks, and those
only against L2 points. Linear in ``n`` for fixed (low) dimension.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.exceptions import ParameterError
from repro.obs import get_recorder
from repro.outliers.base import OutlierDetector, OutlierResult, resolve_p
from repro.utils.geometry import sq_distances_to
from repro.utils.streams import DataStream, as_stream
from repro.utils.validation import check_positive

__all__ = ["CellBasedOutlierDetector"]


class CellBasedOutlierDetector(OutlierDetector):
    """Exact DB(p, k) outliers via the Knorr-Ng cell grid.

    Dataset passes: 1 — one materialising scan; cell colouring and the
    per-cell refinements then run over the in-memory copy.

    Memory: O(n) — the algorithm is defined over a materialised
    dataset copy (it is the exact baseline, not a streaming method).

    Parameters
    ----------
    k:
        Neighbourhood radius.
    p:
        Maximum neighbour count of an outlier (or ``fraction`` of the
        dataset size).
    fraction:
        Alternative to ``p``: the threshold as a fraction of the
        dataset size (specify exactly one of the two).
    max_dims:
        Guard rail: the cell count grows as ``(1/l)^d``, so the
        algorithm refuses dimensions above this bound (the cited paper
        reports it practical for d <= 4).

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> data = np.vstack([rng.normal(0, 0.05, (300, 2)), [[2.0, 2.0]]])
    >>> result = CellBasedOutlierDetector(k=0.5, p=0).detect(data)
    >>> result.indices.tolist()
    [300]
    """

    #: Dataset scans one detect() costs (audited statically by RA001).
    __n_passes__ = 1

    #: Peak working-memory bound of detect() (audited by RA005).
    __space__ = "O(n)"

    def __init__(
        self,
        k: float,
        p: int | None = None,
        fraction: float | None = None,
        max_dims: int = 4,
    ) -> None:
        self.k = check_positive(k, name="k")
        self.p = p
        self.fraction = fraction
        self.max_dims = int(max_dims)

    def detect(self, data, *, stream: DataStream | None = None) -> OutlierResult:
        source = stream if stream is not None else as_stream(data)
        pts = source.materialize()
        n, d = pts.shape
        if d > self.max_dims:
            raise ParameterError(
                f"cell-based detection is practical only for d <= "
                f"{self.max_dims}; got d={d}. Use IndexedOutlierDetector."
            )
        p = resolve_p(self.p, self.fraction, n)

        side = self.k / (2.0 * math.sqrt(d))
        mins = pts.min(axis=0)
        coords = np.floor((pts - mins) / side).astype(np.int64)
        cells: dict[tuple[int, ...], list[int]] = {}
        for row, cell in enumerate(map(tuple, coords)):
            cells.setdefault(cell, []).append(row)
        counts = {cell: len(rows) for cell, rows in cells.items()}

        l2_reach = math.ceil(2.0 * math.sqrt(d))
        offsets_l1 = _ring_offsets(d, 1, 1)
        offsets_l2 = _ring_offsets(d, 2, l2_reach)

        outlier_rows: list[int] = []
        outlier_counts: list[int] = []
        k_sq = self.k * self.k
        for cell, rows in cells.items():
            in_cell = counts[cell]
            l1 = sum(
                counts.get(_shift(cell, off), 0) for off in offsets_l1
            )
            if in_cell - 1 + l1 > p:
                continue  # every point already has > p sure neighbours
            l2 = sum(
                counts.get(_shift(cell, off), 0) for off in offsets_l2
            )
            sure = in_cell - 1 + l1
            l2_rows = [
                row
                for off in offsets_l2
                for row in cells.get(_shift(cell, off), ())
            ]
            if sure + l2 <= p:
                # Even counting all of L2, the bound stays within p:
                # the whole cell is outliers. Exact counts need only
                # the L2 points (everything else is certain).
                for row in rows:
                    outlier_rows.append(row)
                    outlier_counts.append(
                        sure + self._within(pts, row, l2_rows, k_sq)
                    )
                continue
            # Undecided: count each point's true L2 neighbours.
            for row in rows:
                within_l2 = self._within(pts, row, l2_rows, k_sq)
                total = sure + within_l2
                if total <= p:
                    outlier_rows.append(row)
                    outlier_counts.append(total)

        order = np.argsort(outlier_rows)
        return OutlierResult(
            indices=np.asarray(outlier_rows, dtype=np.int64)[order],
            neighbor_counts=np.asarray(outlier_counts, dtype=np.int64)[order],
            n_passes=source.passes,
            n_candidates=n,
        )

    @staticmethod
    def _within(
        pts: np.ndarray, row: int, candidate_rows: list[int], k_sq: float
    ) -> int:
        if not candidate_rows:
            return 0
        get_recorder().count("distance_evals", len(candidate_rows))
        d = sq_distances_to(pts[row][None, :], pts[candidate_rows])
        return int((d <= k_sq).sum())


def _ring_offsets(
    d: int, inner: int, outer: int
) -> list[tuple[int, ...]]:
    """All integer offsets with Chebyshev norm in [inner, outer]."""
    out = []
    for off in itertools.product(range(-outer, outer + 1), repeat=d):
        radius = max(abs(o) for o in off)
        if inner <= radius <= outer:
            out.append(off)
    return out


def _shift(cell: tuple[int, ...], offset: tuple[int, ...]) -> tuple[int, ...]:
    return tuple(c + o for c, o in zip(cell, offset))
