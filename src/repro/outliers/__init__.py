"""Distance-based (DB) outlier detection.

``DB(p, k)`` outliers follow Knorr & Ng: an object is an outlier when at
most ``p`` objects of the dataset lie within distance ``k`` of it. Exact
detectors (nested-loop and index-accelerated) serve as ground truth; the
paper's contribution is :class:`ApproximateOutlierDetector` (section
3.2), which uses the density estimator to screen for *likely* outliers
in one pass and verifies them in at most two more.
"""

from repro.outliers.base import (
    OutlierDetector,
    OutlierResult,
    is_db_outlier_count,
)
from repro.outliers.knorr_ng import (
    IndexedOutlierDetector,
    NestedLoopOutlierDetector,
)
from repro.outliers.approximate import ApproximateOutlierDetector
from repro.outliers.cell_based import CellBasedOutlierDetector

__all__ = [
    "OutlierDetector",
    "OutlierResult",
    "is_db_outlier_count",
    "NestedLoopOutlierDetector",
    "IndexedOutlierDetector",
    "CellBasedOutlierDetector",
    "ApproximateOutlierDetector",
]
