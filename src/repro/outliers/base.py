"""Shared definitions for DB(p, k) outlier detection.

Definition 1 of the paper (after Knorr & Ng): an object ``O`` in dataset
``D`` is a ``DB(p, k)`` outlier if at most ``p`` objects of ``D`` lie at
distance at most ``k`` from ``O``. Following Knorr & Ng's convention the
object itself is *not* counted among its neighbours. ``p`` may also be
given as a fraction ``fr`` of the dataset size: ``p = fr * |D|``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ParameterError
from repro.utils.streams import DataStream

__all__ = [
    "OutlierDetector",
    "OutlierResult",
    "resolve_p",
    "is_db_outlier_count",
]


@dataclass(frozen=True)
class OutlierResult:
    """Output of an outlier detector.

    Attributes
    ----------
    indices:
        Row indices of the detected outliers, ascending.
    neighbor_counts:
        For each detected outlier, the number of dataset points within
        distance ``k`` (excluding itself). Exact detectors report exact
        counts; the approximate detector reports verified counts.
    n_passes:
        Number of dataset passes the detection used (the paper's
        efficiency metric: density fit + screening + verification).
    n_candidates:
        Likely outliers after screening (equal to the number of points
        for exact detectors).
    """

    indices: np.ndarray
    neighbor_counts: np.ndarray
    n_passes: int
    n_candidates: int

    def __len__(self) -> int:
        return self.indices.shape[0]


class OutlierDetector(abc.ABC):
    """Interface shared by every DB(p, k) detector.

    The experiment harness and the approximate/exact cross-checks treat
    detectors as interchangeable: anything with this surface can be
    swapped into the outlier experiments. Conformance (method presence
    *and* signature compatibility) is additionally enforced statically
    by the repro-lint RL005 rule.
    """

    @abc.abstractmethod
    def detect(self, data, *, stream: DataStream | None = None) -> OutlierResult:
        """Find all DB(p, k) outliers of ``data`` (one or more passes)."""


def resolve_p(p: int | None, fraction: float | None, n: int) -> int:
    """Resolve the neighbour-count threshold from ``p`` or a fraction."""
    if (p is None) == (fraction is None):
        raise ParameterError("specify exactly one of p and fraction.")
    if fraction is not None:
        if not 0.0 <= fraction < 1.0:
            raise ParameterError(
                f"fraction must be in [0, 1); got {fraction}."
            )
        return int(fraction * n)
    if p < 0:
        raise ParameterError(f"p must be >= 0; got {p}.")
    return int(p)


def is_db_outlier_count(neighbor_count: int, p: int) -> bool:
    """The DB(p, k) predicate given a known neighbour count.

    >>> is_db_outlier_count(3, p=5), is_db_outlier_count(6, p=5)
    (True, False)
    """
    return neighbor_count <= p
