"""BIRCH (Zhang, Ramakrishnan, Livny, SIGMOD 1996).

The comparison method of section 4: BIRCH compresses the *entire*
dataset into a CF-tree whose size is capped — the paper allows it "as
much space as the size of the sample" — and then clusters the leaf
entries globally. A clustering feature (CF) is the triple
``(n, LS, SS)`` (count, linear sum, sum of squared norms), which is
enough to compute centroids, radii and merge tests without revisiting
the data.

This implementation follows the original paper:

* insertion descends to the closest leaf entry and absorbs the point if
  the merged entry's radius stays within the threshold ``T``;
* leaves (and internal nodes) split around the two farthest entries when
  they exceed the branching factor;
* when the number of leaf entries exceeds the memory budget the tree is
  rebuilt with a larger ``T`` by reinserting the existing leaf entries;
* a global phase runs centroid-linkage agglomerative clustering over the
  leaf-entry centroids (weighted by entry counts) down to ``n_clusters``,
  and input points are labelled by their nearest global center.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import Clusterer, ClusteringResult
from repro.clustering.hierarchical import AgglomerativeClustering
from repro.exceptions import ParameterError
from repro.utils.geometry import sq_distances_to
from repro.utils.validation import check_array

__all__ = [
    "CFEntry",
    "CFNode",
    "CFTree",
    "Birch",
]


class CFEntry:
    """A clustering feature: ``(n, LS, SS)`` plus an optional child node."""

    __slots__ = ("n", "ls", "ss", "child")

    def __init__(self, n: float, ls: np.ndarray, ss: float, child=None) -> None:
        self.n = n
        self.ls = ls
        self.ss = ss
        self.child = child

    @classmethod
    def from_point(cls, point: np.ndarray) -> "CFEntry":
        return cls(1.0, point.copy(), float(point @ point))

    @property
    def centroid(self) -> np.ndarray:
        return self.ls / self.n

    @property
    def radius(self) -> float:
        """RMS distance of the entry's points from its centroid."""
        sq = self.ss / self.n - float(self.centroid @ self.centroid)
        return float(np.sqrt(max(sq, 0.0)))

    def merged_radius(self, other: "CFEntry") -> float:
        """Radius the entry would have after absorbing ``other``."""
        n = self.n + other.n
        ls = self.ls + other.ls
        ss = self.ss + other.ss
        sq = ss / n - float(ls @ ls) / n**2
        return float(np.sqrt(max(sq, 0.0)))

    def absorb(self, other: "CFEntry") -> None:
        self.n += other.n
        self.ls = self.ls + other.ls
        self.ss += other.ss

    def copy_cf(self) -> "CFEntry":
        return CFEntry(self.n, self.ls.copy(), self.ss)


class CFNode:
    """A CF-tree node holding up to ``branching_factor`` entries."""

    __slots__ = ("entries", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.entries: list[CFEntry] = []
        self.is_leaf = is_leaf

    def centroids(self) -> np.ndarray:
        return np.array([e.centroid for e in self.entries])

    def closest_entry_index(self, centroid: np.ndarray) -> int:
        d = sq_distances_to(self.centroids(), centroid[None, :]).ravel()
        return int(d.argmin())


class CFTree:
    """The growable CF-tree; :class:`Birch` drives it."""

    def __init__(self, threshold: float, branching_factor: int) -> None:
        self.threshold = threshold
        self.branching_factor = branching_factor
        self.root = CFNode(is_leaf=True)
        self.n_leaf_entries = 0

    # -- insertion --------------------------------------------------------------

    def insert(self, entry: CFEntry) -> None:
        split = self._insert_into(self.root, entry)
        if split is not None:
            # Root split: grow a new root one level up.
            left, right = split
            new_root = CFNode(is_leaf=False)
            new_root.entries.append(self._summarise(left))
            new_root.entries.append(self._summarise(right))
            self.root = new_root

    def _insert_into(self, node: CFNode, entry: CFEntry):
        """Insert; return (left, right) nodes if ``node`` split, else None."""
        if node.is_leaf:
            return self._insert_into_leaf(node, entry)
        idx = node.closest_entry_index(entry.centroid)
        parent_entry = node.entries[idx]
        split = self._insert_into(parent_entry.child, entry)
        # The child's CF grew either way.
        parent_entry.n += entry.n
        parent_entry.ls = parent_entry.ls + entry.ls
        parent_entry.ss += entry.ss
        if split is None:
            return None
        left, right = split
        node.entries[idx] = self._summarise(left)
        node.entries.append(self._summarise(right))
        if len(node.entries) > self.branching_factor:
            return self._split(node)
        return None

    def _insert_into_leaf(self, node: CFNode, entry: CFEntry):
        if node.entries:
            idx = node.closest_entry_index(entry.centroid)
            closest = node.entries[idx]
            if closest.merged_radius(entry) <= self.threshold:
                closest.absorb(entry)
                return None
        node.entries.append(entry)
        self.n_leaf_entries += 1
        if len(node.entries) > self.branching_factor:
            return self._split(node)
        return None

    def _split(self, node: CFNode) -> tuple[CFNode, CFNode]:
        """Split around the two farthest entry centroids."""
        centroids = node.centroids()
        d = sq_distances_to(centroids, centroids)
        i, j = np.unravel_index(d.argmax(), d.shape)
        to_i = d[:, i] <= d[:, j]
        if to_i.all() or not to_i.any():
            # Degenerate geometry (all centroids coincide): halve the
            # entry list so neither side is empty.
            half = len(node.entries) // 2
            to_i = np.arange(len(node.entries)) < half
        left = CFNode(is_leaf=node.is_leaf)
        right = CFNode(is_leaf=node.is_leaf)
        for pos, entry in enumerate(node.entries):
            (left if to_i[pos] else right).entries.append(entry)
        return left, right

    @staticmethod
    def _summarise(node: CFNode) -> CFEntry:
        """Build the parent CF entry that points at ``node``."""
        n = sum(e.n for e in node.entries)
        ls = np.sum([e.ls for e in node.entries], axis=0)
        ss = sum(e.ss for e in node.entries)
        return CFEntry(n, ls, ss, child=node)

    # -- inspection ---------------------------------------------------------------

    def leaf_entries(self) -> list[CFEntry]:
        out: list[CFEntry] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.extend(node.entries)
            else:
                stack.extend(e.child for e in node.entries)
        return out


class Birch(Clusterer):
    """CF-tree summarisation + global agglomerative phase.

    Parameters
    ----------
    n_clusters:
        Clusters produced by the global phase.
    threshold:
        Initial absorption threshold ``T`` (the paper's experiments start
        at 0 and let rebuilding grow it).
    branching_factor:
        Maximum entries per node.
    max_leaf_entries:
        Memory budget: when the number of leaf entries exceeds it the
        tree is rebuilt with a doubled (at minimum) threshold. The
        paper's comparisons set this to the sample size granted to the
        sampling methods.
    outlier_entry_fraction:
        BIRCH's phase-3 outlier treatment: leaf entries holding fewer
        than this fraction of the *average* entry count are considered
        outliers and excluded from the global clustering ("a leaf entry
        with far fewer data points than the average is treated as an
        outlier", Zhang et al.). ``0`` disables the discard. This is
        also why BIRCH loses genuinely small clusters — their entries
        look like outliers — matching the behaviour the paper reports.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(5)
    >>> pts = np.vstack([rng.normal(c, 0.1, (200, 2)) for c in ((0, 0), (3, 3))])
    >>> result = Birch(n_clusters=2, max_leaf_entries=50).fit(pts)
    >>> result.n_clusters
    2
    """

    def __init__(
        self,
        n_clusters: int = 8,
        threshold: float = 0.0,
        branching_factor: int = 50,
        max_leaf_entries: int | None = None,
        outlier_entry_fraction: float = 1.0,
    ) -> None:
        if n_clusters < 1:
            raise ParameterError(f"n_clusters must be >= 1; got {n_clusters}.")
        if branching_factor < 2:
            raise ParameterError(
                f"branching_factor must be >= 2; got {branching_factor}."
            )
        if threshold < 0:
            raise ParameterError(f"threshold must be >= 0; got {threshold}.")
        if max_leaf_entries is not None and max_leaf_entries < 2:
            raise ParameterError(
                f"max_leaf_entries must be >= 2; got {max_leaf_entries}."
            )
        if outlier_entry_fraction < 0:
            raise ParameterError(
                "outlier_entry_fraction must be >= 0; "
                f"got {outlier_entry_fraction}."
            )
        self.n_clusters = int(n_clusters)
        self.threshold = float(threshold)
        self.branching_factor = int(branching_factor)
        self.max_leaf_entries = max_leaf_entries
        self.outlier_entry_fraction = float(outlier_entry_fraction)
        self.final_threshold_: float | None = None
        self.n_rebuilds_: int = 0
        self.n_leaf_entries_: int | None = None

    def fit(self, points, sample_weight=None) -> ClusteringResult:
        pts = check_array(points, name="points")
        if sample_weight is not None:
            raise ParameterError(
                "Birch consumes the raw dataset; sample_weight is not used."
            )
        tree = self._build_tree(pts)
        self.final_threshold_ = tree.threshold
        entries = tree.leaf_entries()
        self.n_leaf_entries_ = len(entries)
        entries = self._discard_outlier_entries(entries)
        centroids = np.array([e.centroid for e in entries])
        counts = np.array([e.n for e in entries])

        n_global = min(self.n_clusters, len(entries))
        global_phase = AgglomerativeClustering(
            n_clusters=n_global, linkage="centroid"
        )
        summary = global_phase.fit(centroids, sample_weight=counts)

        centers = summary.centers
        labels = sq_distances_to(pts, centers).argmin(axis=1)
        sizes = np.bincount(labels, minlength=n_global)
        return ClusteringResult(
            labels=labels,
            centers=centers,
            representatives=[c[None, :] for c in centers],
            sizes=sizes,
        )

    def _discard_outlier_entries(
        self, entries: list[CFEntry]
    ) -> list[CFEntry]:
        """Phase-3 outlier handling: drop sparse leaf entries."""
        if self.outlier_entry_fraction == 0 or len(entries) <= self.n_clusters:
            return entries
        counts = np.array([e.n for e in entries])
        cutoff = self.outlier_entry_fraction * counts.mean()
        kept = [e for e, n in zip(entries, counts) if n >= cutoff]
        if len(kept) < self.n_clusters:
            # Keep at least n_clusters entries, largest first.
            order = np.argsort(-counts)
            kept = [entries[i] for i in order[: self.n_clusters]]
        return kept

    # -- tree construction -----------------------------------------------------------

    def _build_tree(self, pts: np.ndarray) -> CFTree:
        self.n_rebuilds_ = 0
        tree = CFTree(self.threshold, self.branching_factor)
        for row in pts:
            tree.insert(CFEntry.from_point(row))
            if (
                self.max_leaf_entries is not None
                and tree.n_leaf_entries > self.max_leaf_entries
            ):
                tree = self._rebuild(tree)
        return tree

    def _rebuild(self, tree: CFTree) -> CFTree:
        """Reinsert the leaf entries into a tree with a larger threshold."""
        entries = tree.leaf_entries()
        new_threshold = self._next_threshold(tree, entries)
        while True:
            self.n_rebuilds_ += 1
            rebuilt = CFTree(new_threshold, self.branching_factor)
            for entry in entries:
                rebuilt.insert(entry.copy_cf())
            if (
                self.max_leaf_entries is None
                or rebuilt.n_leaf_entries <= self.max_leaf_entries
            ):
                return rebuilt
            new_threshold *= 2.0

    @staticmethod
    def _next_threshold(tree: CFTree, entries: list[CFEntry]) -> float:
        """Heuristic from the BIRCH paper: grow T past the closest pair
        of leaf centroids so at least one absorption happens."""
        centroids = np.array([e.centroid for e in entries])
        if centroids.shape[0] > 2048:
            centroids = centroids[:: centroids.shape[0] // 2048 + 1]
        d = sq_distances_to(centroids, centroids)
        np.fill_diagonal(d, np.inf)
        nearest = float(np.sqrt(d.min(axis=1).mean()))
        return max(2.0 * tree.threshold, nearest, 1e-12)
