"""CLARANS: K-medoids via randomized search (Ng & Han, VLDB 1994).

The partitional technique the paper cites ([20]) as the classic example
of sampling-accelerated clustering in databases. CLARANS views the
space of medoid sets as a graph (neighbours differ in one medoid) and
performs repeated randomized hill-climbing: from a random node, try up
to ``max_neighbors`` random single-medoid swaps, moving whenever one
improves the cost; a node with no sampled improvement is a local
optimum. The best of ``num_local`` local optima wins.

Like :class:`~repro.clustering.kmedoids.KMedoids` it accepts point
weights, so it can consume inverse-probability-weighted biased samples.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import Clusterer, ClusteringResult
from repro.exceptions import ParameterError
from repro.utils.geometry import pairwise_sq_distances
from repro.utils.validation import check_array, check_random_state

__all__ = ["Clarans"]


class Clarans(Clusterer):
    """Clustering Large Applications based on RANdomized Search.

    Parameters
    ----------
    n_clusters:
        Number of medoids ``K``.
    num_local:
        Number of independent local searches (the original paper
        recommends 2).
    max_neighbors:
        Random swaps examined before a node is declared a local
        optimum. The original heuristic is ``1.25%`` of ``K * (n - K)``;
        pass ``None`` to use it.
    random_state:
        Seed for node choices and swap sampling.

    Examples
    --------
    >>> import numpy as np
    >>> pts = np.vstack([np.random.default_rng(0).normal(c, 0.1, (50, 2))
    ...                  for c in ((0, 0), (3, 3))])
    >>> result = Clarans(n_clusters=2, random_state=0).fit(pts)
    >>> sorted(result.sizes.tolist())
    [50, 50]
    """

    def __init__(
        self,
        n_clusters: int = 8,
        num_local: int = 2,
        max_neighbors: int | None = None,
        random_state=None,
    ) -> None:
        if n_clusters < 1:
            raise ParameterError(f"n_clusters must be >= 1; got {n_clusters}.")
        if num_local < 1:
            raise ParameterError(f"num_local must be >= 1; got {num_local}.")
        if max_neighbors is not None and max_neighbors < 1:
            raise ParameterError(
                f"max_neighbors must be >= 1; got {max_neighbors}."
            )
        self.n_clusters = int(n_clusters)
        self.num_local = int(num_local)
        self.max_neighbors = max_neighbors
        self.random_state = random_state
        self.cost_: float | None = None

    def fit(self, points, sample_weight=None) -> ClusteringResult:
        pts = check_array(points, name="points", min_rows=self.n_clusters)
        n = pts.shape[0]
        weights = (
            np.ones(n)
            if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        if weights.shape != (n,):
            raise ParameterError(
                f"sample_weight must have shape ({n},); got {weights.shape}."
            )
        rng = check_random_state(self.random_state)
        dists = np.sqrt(pairwise_sq_distances(pts))
        max_neighbors = self._resolve_max_neighbors(n)

        best_cost = np.inf
        best_medoids: np.ndarray | None = None
        for _ in range(self.num_local):
            medoids, cost = self._local_search(
                dists, weights, rng, max_neighbors
            )
            if cost < best_cost:
                best_cost, best_medoids = cost, medoids

        labels = dists[:, best_medoids].argmin(axis=1)
        self.cost_ = float(best_cost)
        centers = pts[best_medoids]
        sizes = np.bincount(labels, minlength=self.n_clusters)
        return ClusteringResult(
            labels=labels,
            centers=centers,
            representatives=[c[None, :] for c in centers],
            sizes=sizes,
        )

    # -- search ---------------------------------------------------------------

    def _resolve_max_neighbors(self, n: int) -> int:
        if self.max_neighbors is not None:
            return self.max_neighbors
        # Ng & Han's heuristic: max(250, 1.25% of K(n-K)).
        return max(250, int(0.0125 * self.n_clusters * (n - self.n_clusters)))

    def _local_search(
        self,
        dists: np.ndarray,
        weights: np.ndarray,
        rng: np.random.Generator,
        max_neighbors: int,
    ) -> tuple[np.ndarray, float]:
        n = dists.shape[0]
        medoids = rng.choice(n, size=self.n_clusters, replace=False)
        cost = self._cost(dists, weights, medoids)
        failures = 0
        while failures < max_neighbors:
            m_pos = rng.integers(self.n_clusters)
            candidate = int(rng.integers(n))
            if candidate in medoids:
                failures += 1
                continue
            trial = medoids.copy()
            trial[m_pos] = candidate
            trial_cost = self._cost(dists, weights, trial)
            if trial_cost < cost - 1e-12:
                medoids, cost = trial, trial_cost
                failures = 0
            else:
                failures += 1
        return medoids, cost

    @staticmethod
    def _cost(
        dists: np.ndarray, weights: np.ndarray, medoids: np.ndarray
    ) -> float:
        nearest = dists[:, medoids].min(axis=1)
        return float(weights @ nearest)
