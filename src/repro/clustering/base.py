"""Common result type and interface for clusterers."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ClusteringResult",
    "Clusterer",
]


@dataclass
class ClusteringResult:
    """Output shared by every clusterer in the library.

    Attributes
    ----------
    labels:
        Cluster index per input point, shape ``(n,)``. ``-1`` marks
        points the algorithm treated as noise/unassigned (none of the
        current algorithms do, but the convention is reserved).
    centers:
        One center per cluster (mean of members, or the medoid), shape
        ``(n_clusters, d)``.
    representatives:
        Per-cluster representative point sets. For CURE these are the
        shrunk well-scattered points the paper's found-cluster criterion
        inspects; for the other algorithms the center alone.
    sizes:
        Number of member points (or, for BIRCH, the summed CF counts).
    """

    labels: np.ndarray
    centers: np.ndarray
    representatives: list[np.ndarray] = field(default_factory=list)
    sizes: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    @property
    def n_clusters(self) -> int:
        return self.centers.shape[0]

    def cluster_members(self, cluster: int) -> np.ndarray:
        """Indices of the input points assigned to ``cluster``."""
        return np.nonzero(self.labels == cluster)[0]


class Clusterer(abc.ABC):
    """Interface: ``fit(points) -> ClusteringResult``."""

    @abc.abstractmethod
    def fit(self, points, sample_weight=None) -> ClusteringResult:
        """Cluster ``points``; optional per-point weights where supported."""
