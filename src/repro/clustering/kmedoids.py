"""K-medoids (PAM: build + swap) with optional point weights.

Included because section 3.1 discusses running K-medoids on biased
samples with inverse-probability weights. The implementation is the
classic Partitioning Around Medoids: a greedy BUILD phase followed by
steepest-descent SWAP, with the swap gain evaluated vectorised over all
(medoid, candidate) pairs. Quadratic memory — intended for samples, not
raw datasets, exactly like the paper's usage.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import Clusterer, ClusteringResult
from repro.exceptions import ParameterError
from repro.utils.geometry import pairwise_sq_distances
from repro.utils.validation import check_array

__all__ = ["KMedoids"]


class KMedoids(Clusterer):
    """Partitioning Around Medoids on Euclidean distances.

    Parameters
    ----------
    n_clusters:
        Number of medoids ``K``.
    max_swaps:
        Upper bound on SWAP iterations (each performs the best
        single-swap improvement).

    Notes
    -----
    Weights multiply each point's contribution to the criterion
    ``sum_i w_i d(x_i, medoid(x_i))`` — the inverse-probability
    correction for biased samples.
    """

    def __init__(self, n_clusters: int = 8, max_swaps: int = 100) -> None:
        if n_clusters < 1:
            raise ParameterError(f"n_clusters must be >= 1; got {n_clusters}.")
        self.n_clusters = int(n_clusters)
        self.max_swaps = int(max_swaps)
        self.cost_: float | None = None

    def fit(self, points, sample_weight=None) -> ClusteringResult:
        pts = check_array(points, name="points", min_rows=self.n_clusters)
        n = pts.shape[0]
        weights = (
            np.ones(n)
            if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        if weights.shape != (n,):
            raise ParameterError(
                f"sample_weight must have shape ({n},); got {weights.shape}."
            )
        dists = np.sqrt(pairwise_sq_distances(pts))
        medoids = self._build(dists, weights)
        medoids = self._swap(dists, weights, medoids)

        labels = dists[:, medoids].argmin(axis=1)
        centers = pts[medoids]
        self.cost_ = float(
            (weights * dists[np.arange(n), medoids[labels]]).sum()
        )
        sizes = np.bincount(labels, minlength=self.n_clusters)
        return ClusteringResult(
            labels=labels,
            centers=centers,
            representatives=[c[None, :] for c in centers],
            sizes=sizes,
        )

    # -- PAM phases ---------------------------------------------------------------

    def _build(self, dists: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Greedy BUILD: repeatedly add the medoid that lowers cost most."""
        n = dists.shape[0]
        first = int((weights[None, :] * dists).sum(axis=1).argmin())
        medoids = [first]
        nearest = dists[:, first].copy()
        for _ in range(1, self.n_clusters):
            # Gain of adding candidate c: sum_i w_i * max(0, nearest_i - d_ic)
            improvement = np.maximum(0.0, nearest[None, :] - dists) @ weights
            improvement[medoids] = -np.inf
            best = int(improvement.argmax())
            medoids.append(best)
            np.minimum(nearest, dists[:, best], out=nearest)
        return np.array(medoids, dtype=np.int64)

    def _swap(
        self, dists: np.ndarray, weights: np.ndarray, medoids: np.ndarray
    ) -> np.ndarray:
        """Steepest-descent SWAP until no swap improves the cost."""
        n = dists.shape[0]
        medoids = medoids.copy()
        for _ in range(self.max_swaps):
            med_d = dists[:, medoids]
            order = np.argsort(med_d, axis=1)
            nearest = med_d[np.arange(n), order[:, 0]]
            second = (
                med_d[np.arange(n), order[:, 1]]
                if self.n_clusters > 1
                else np.full(n, np.inf)
            )
            nearest_idx = order[:, 0]

            best_delta = 0.0
            best_pair = None
            is_medoid = np.zeros(n, dtype=bool)
            is_medoid[medoids] = True
            candidates = np.nonzero(~is_medoid)[0]
            if candidates.size == 0:
                break
            d_cand = dists[:, candidates]  # (n, n_candidates)
            for m_pos in range(self.n_clusters):
                owned = nearest_idx == m_pos
                # Cost change per point if medoid m_pos is replaced by c:
                # owned points re-attach to min(second, d_ic); others
                # switch only if c is closer than their current nearest.
                reattach = np.minimum(second[owned, None], d_cand[owned, :])
                delta_owned = (
                    weights[owned] @ (reattach - nearest[owned, None])
                )
                gain = np.minimum(0.0, d_cand[~owned, :] - nearest[~owned, None])
                delta_other = weights[~owned] @ gain
                delta = delta_owned + delta_other
                c_best = int(delta.argmin())
                if delta[c_best] < best_delta - 1e-12:
                    best_delta = float(delta[c_best])
                    best_pair = (m_pos, candidates[c_best])
            if best_pair is None:
                break
            medoids[best_pair[0]] = best_pair[1]
        return medoids
