"""Label the full dataset from a clustering computed on a sample.

After the hierarchical algorithm runs on a (biased) sample, the paper's
pipeline labels every original point by its nearest cluster — CURE
assigns by the nearest *representative* point, which respects
non-spherical shapes better than nearest-center assignment. Both
policies are offered.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.clustering.base import ClusteringResult
from repro.exceptions import ParameterError
from repro.utils.streams import DataStream, as_stream

__all__ = ["assign_to_clusters"]


def assign_to_clusters(
    data,
    result: ClusteringResult,
    *,
    policy: str = "representatives",
    stream: DataStream | None = None,
) -> np.ndarray:
    """Nearest-cluster label for every point of ``data``.

    Parameters
    ----------
    data:
        The full dataset (array or :class:`DataStream`); labelling takes
        one sequential pass.
    result:
        A clustering computed on a sample of ``data``.
    policy:
        ``"representatives"`` — nearest representative point decides
        (CURE's rule); ``"centers"`` — nearest cluster center decides.
    stream:
        Pre-built :class:`DataStream` over the dataset; overrides
        ``data`` when given.

    Returns
    -------
    numpy.ndarray
        Integer labels of shape ``(len(data),)``.
    """
    if policy not in ("representatives", "centers"):
        raise ParameterError(
            f"policy must be 'representatives' or 'centers'; got {policy!r}."
        )
    if result.n_clusters == 0:
        raise ParameterError("clustering result has no clusters.")
    if policy == "centers" or not result.representatives:
        anchors = result.centers
        anchor_label = np.arange(result.n_clusters)
    else:
        anchors = np.vstack(result.representatives)
        anchor_label = np.concatenate(
            [
                np.full(reps.shape[0], label)
                for label, reps in enumerate(result.representatives)
            ]
        )
    tree = cKDTree(anchors)
    source = stream if stream is not None else as_stream(data)
    labels = np.empty(len(source), dtype=np.int64)
    for start, chunk in source.iter_with_offsets():
        _, nearest = tree.query(chunk)
        labels[start : start + chunk.shape[0]] = anchor_label[nearest]
    return labels
