"""Generic agglomerative clustering via Lance-Williams updates.

Implements the textbook bottom-up hierarchy over a dense distance
matrix: start with singletons, repeatedly merge the closest pair, and
update distances with the Lance-Williams recurrence for the chosen
linkage. Quadratic memory — meant for samples and for BIRCH's global
phase over CF-entry centroids (where entry weights feed the centroid /
average updates).
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import Clusterer, ClusteringResult
from repro.exceptions import ParameterError
from repro.utils.geometry import pairwise_sq_distances
from repro.utils.validation import check_array

__all__ = ["AgglomerativeClustering"]

_LINKAGES = ("single", "complete", "average", "centroid")


class AgglomerativeClustering(Clusterer):
    """Bottom-up hierarchy down to ``n_clusters`` (or a distance cut).

    Parameters
    ----------
    n_clusters:
        Stop when this many clusters remain.
    linkage:
        One of ``single``, ``complete``, ``average``, ``centroid``.
        Centroid linkage operates on *squared* Euclidean distances, the
        others on plain Euclidean distances.
    distance_threshold:
        Optional alternative stop: halt before any merge whose linkage
        distance exceeds the threshold (``n_clusters`` then acts as a
        lower bound of 1).
    """

    def __init__(
        self,
        n_clusters: int = 2,
        linkage: str = "average",
        distance_threshold: float | None = None,
    ) -> None:
        if n_clusters < 1:
            raise ParameterError(f"n_clusters must be >= 1; got {n_clusters}.")
        if linkage not in _LINKAGES:
            raise ParameterError(
                f"linkage must be one of {_LINKAGES}; got {linkage!r}."
            )
        self.n_clusters = int(n_clusters)
        self.linkage = linkage
        self.distance_threshold = distance_threshold

    def fit(self, points, sample_weight=None) -> ClusteringResult:
        pts = check_array(points, name="points")
        n = pts.shape[0]
        weights = (
            np.ones(n)
            if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        if weights.shape != (n,):
            raise ParameterError(
                f"sample_weight must have shape ({n},); got {weights.shape}."
            )
        target = min(self.n_clusters, n)

        dist = pairwise_sq_distances(pts)
        if self.linkage != "centroid":
            np.sqrt(dist, out=dist)
        np.fill_diagonal(dist, np.inf)

        active = np.ones(n, dtype=bool)
        sizes = weights.copy()
        # Union-find-ish membership: cluster id -> member row indices.
        members: list[list[int]] = [[i] for i in range(n)]
        n_active = n
        while n_active > target:
            flat = np.argmin(dist)
            i, j = np.unravel_index(flat, dist.shape)
            d_ij = dist[i, j]
            if (
                self.distance_threshold is not None
                and d_ij > self.distance_threshold
            ):
                break
            i, j = (int(i), int(j)) if i < j else (int(j), int(i))
            self._merge_rows(dist, sizes, i, j, d_ij)
            members[i].extend(members[j])
            members[j] = []
            sizes[i] += sizes[j]
            active[j] = False
            dist[j, :] = np.inf
            dist[:, j] = np.inf
            n_active -= 1

        ids = np.nonzero(active)[0]
        labels = np.empty(n, dtype=np.int64)
        centers = np.empty((len(ids), pts.shape[1]))
        counts = np.empty(len(ids), dtype=np.int64)
        for new_id, old_id in enumerate(ids):
            rows = members[old_id]
            labels[rows] = new_id
            centers[new_id] = np.average(
                pts[rows], axis=0, weights=weights[rows]
            )
            counts[new_id] = len(rows)
        return ClusteringResult(
            labels=labels,
            centers=centers,
            representatives=[c[None, :] for c in centers],
            sizes=counts,
        )

    def _merge_rows(
        self,
        dist: np.ndarray,
        sizes: np.ndarray,
        i: int,
        j: int,
        d_ij: float,
    ) -> None:
        """Lance-Williams update of row/column ``i`` after absorbing ``j``."""
        d_i = dist[i, :]
        d_j = dist[j, :]
        if self.linkage == "single":
            new = np.minimum(d_i, d_j)
        elif self.linkage == "complete":
            # inf entries (dead columns) stay inf under maximum.
            new = np.maximum(d_i, d_j)
        elif self.linkage == "average":
            w_i = sizes[i] / (sizes[i] + sizes[j])
            new = w_i * d_i + (1.0 - w_i) * d_j
        else:  # centroid, on squared distances
            s_i, s_j = sizes[i], sizes[j]
            total = s_i + s_j
            new = (
                (s_i / total) * d_i
                + (s_j / total) * d_j
                - (s_i * s_j / total**2) * d_ij
            )
        new[i] = np.inf
        new[j] = np.inf
        dist[i, :] = new
        dist[:, i] = new
