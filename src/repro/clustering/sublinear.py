"""Sublinear-time approximate K-median via uniform sampling.

Section 3.1 of the paper relates its pipeline to "the new results on
approximation clustering algorithms [Indyk, STOC/FOCS 1999], since
these algorithms also run on a (uniform random) sample to efficiently
obtain the approximate clusterings" — while noting they approximate the
*K-medoids criterion*, a different target from the hierarchical
clusterings the paper computes.

This module implements that comparison point in its practical form:
draw a uniform sample of ``O(sqrt(n k))``-ish size, solve K-median on
the sample with PAM, and charge the full dataset to the sample medoids.
With a second refinement round (re-solving within each induced
partition) this is the classic sampling bicriteria scheme; the sample
size exponent is configurable so the sublinearity is explicit.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import Clusterer, ClusteringResult
from repro.clustering.kmedoids import KMedoids
from repro.exceptions import ParameterError
from repro.utils.geometry import sq_distances_to
from repro.utils.validation import check_array, check_random_state

__all__ = ["SublinearKMedian"]


class SublinearKMedian(Clusterer):
    """Sample-based approximate K-median.

    Parameters
    ----------
    n_clusters:
        Number of medians ``K``.
    sample_exponent:
        The sample holds ``ceil(c * (n * K) ** sample_exponent)``
        points; 0.5 gives the canonical ``sqrt(nK)`` scaling.
    sample_factor:
        The constant ``c`` above.
    refine:
        When true, run one refinement round: partition the data by the
        sample medoids, then re-solve 1-median inside each part on a
        fresh per-part sample.
    random_state:
        Seed for the sampling.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> pts = np.vstack([rng.normal(c, 0.1, (400, 2))
    ...                  for c in ((0, 0), (4, 4))])
    >>> result = SublinearKMedian(n_clusters=2, random_state=0).fit(pts)
    >>> sorted(result.sizes.tolist())
    [400, 400]
    """

    def __init__(
        self,
        n_clusters: int = 8,
        sample_exponent: float = 0.5,
        sample_factor: float = 4.0,
        refine: bool = True,
        random_state=None,
    ) -> None:
        if n_clusters < 1:
            raise ParameterError(f"n_clusters must be >= 1; got {n_clusters}.")
        if not 0.0 < sample_exponent <= 1.0:
            raise ParameterError(
                f"sample_exponent must be in (0, 1]; got {sample_exponent}."
            )
        if sample_factor <= 0:
            raise ParameterError(
                f"sample_factor must be > 0; got {sample_factor}."
            )
        self.n_clusters = int(n_clusters)
        self.sample_exponent = float(sample_exponent)
        self.sample_factor = float(sample_factor)
        self.refine = bool(refine)
        self.random_state = random_state
        self.sample_size_: int | None = None
        self.cost_: float | None = None

    def fit(self, points, sample_weight=None) -> ClusteringResult:
        pts = check_array(points, name="points", min_rows=self.n_clusters)
        if sample_weight is not None:
            raise ParameterError(
                "SublinearKMedian draws its own uniform sample; "
                "sample_weight is not supported."
            )
        rng = check_random_state(self.random_state)
        n = pts.shape[0]
        size = int(
            np.ceil(
                self.sample_factor
                * (n * self.n_clusters) ** self.sample_exponent
            )
        )
        size = int(np.clip(size, self.n_clusters, n))
        self.sample_size_ = size

        rows = rng.choice(n, size=size, replace=False)
        solved = KMedoids(n_clusters=self.n_clusters).fit(pts[rows])
        medoids = solved.centers

        if self.refine:
            medoids = self._refine(pts, medoids, rng)

        dists = np.sqrt(sq_distances_to(pts, medoids))
        labels = dists.argmin(axis=1)
        self.cost_ = float(dists[np.arange(n), labels].sum())
        sizes = np.bincount(labels, minlength=self.n_clusters)
        return ClusteringResult(
            labels=labels,
            centers=medoids,
            representatives=[c[None, :] for c in medoids],
            sizes=sizes,
        )

    def _refine(
        self,
        pts: np.ndarray,
        medoids: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Re-solve 1-median per induced part on a per-part sample."""
        labels = sq_distances_to(pts, medoids).argmin(axis=1)
        refined = medoids.copy()
        per_part = max(
            8, self.sample_size_ // max(1, self.n_clusters)
        )
        for k in range(self.n_clusters):
            members = np.nonzero(labels == k)[0]
            if members.size == 0:
                continue
            chosen = (
                members
                if members.size <= per_part
                else rng.choice(members, size=per_part, replace=False)
            )
            part = pts[chosen]
            dists = np.sqrt(sq_distances_to(part, part))
            refined[k] = part[dists.sum(axis=1).argmin()]
        return refined
