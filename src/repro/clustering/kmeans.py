"""Weighted Lloyd K-means with k-means++ initialisation.

Supports per-point weights so a density-biased sample can be clustered
with inverse-probability weighting (section 3.1 of the paper): the
weighted criterion ``sum_i w_i dist(x_i, m(x_i))^2`` is then an unbiased
estimate of the full-dataset K-means criterion.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.clustering.base import Clusterer, ClusteringResult
from repro.exceptions import ConvergenceWarning, ParameterError
from repro.utils.geometry import sq_distances_to
from repro.utils.validation import check_array, check_random_state

__all__ = ["KMeans"]


class KMeans(Clusterer):
    """Lloyd's algorithm with weighted updates.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``K``.
    n_init:
        Independent restarts; the run with the lowest weighted inertia
        wins.
    max_iter, tol:
        Lloyd iteration budget and center-shift stopping tolerance.
    random_state:
        Seed for k-means++ and restarts.

    Examples
    --------
    >>> import numpy as np
    >>> pts = np.vstack([np.zeros((50, 2)), np.ones((50, 2)) * 5])
    >>> result = KMeans(n_clusters=2, random_state=0).fit(pts)
    >>> sorted(result.sizes.tolist())
    [50, 50]
    """

    def __init__(
        self,
        n_clusters: int = 8,
        n_init: int = 4,
        max_iter: int = 300,
        tol: float = 1e-6,
        random_state=None,
    ) -> None:
        if n_clusters < 1:
            raise ParameterError(f"n_clusters must be >= 1; got {n_clusters}.")
        if n_init < 1:
            raise ParameterError(f"n_init must be >= 1; got {n_init}.")
        self.n_clusters = int(n_clusters)
        self.n_init = int(n_init)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.random_state = random_state
        self.inertia_: float | None = None

    # -- public API ----------------------------------------------------------

    def fit(self, points, sample_weight=None) -> ClusteringResult:
        pts = check_array(points, name="points", min_rows=self.n_clusters)
        weights = self._check_weights(pts, sample_weight)
        rng = check_random_state(self.random_state)

        best_inertia = np.inf
        best_centers = None
        best_labels = None
        for _ in range(self.n_init):
            centers = self._kmeanspp(pts, weights, rng)
            centers, labels, inertia = self._lloyd(pts, weights, centers)
            if inertia < best_inertia:
                best_inertia, best_centers, best_labels = inertia, centers, labels

        self.inertia_ = float(best_inertia)
        sizes = np.bincount(best_labels, minlength=self.n_clusters)
        return ClusteringResult(
            labels=best_labels,
            centers=best_centers,
            representatives=[c[None, :] for c in best_centers],
            sizes=sizes,
        )

    def predict(self, points, centers) -> np.ndarray:
        """Nearest-center labels for new points."""
        pts = check_array(points, name="points")
        return sq_distances_to(pts, centers).argmin(axis=1)

    # -- internals -------------------------------------------------------------

    def _check_weights(self, pts: np.ndarray, sample_weight) -> np.ndarray:
        if sample_weight is None:
            return np.ones(pts.shape[0])
        weights = np.asarray(sample_weight, dtype=np.float64)
        if weights.shape != (pts.shape[0],):
            raise ParameterError(
                f"sample_weight must have shape ({pts.shape[0]},); "
                f"got {weights.shape}."
            )
        if (weights < 0).any() or weights.sum() <= 0:
            raise ParameterError(
                "sample_weight must be non-negative with positive total."
            )
        return weights

    def _kmeanspp(
        self, pts: np.ndarray, weights: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Weighted k-means++ seeding."""
        n = pts.shape[0]
        centers = np.empty((self.n_clusters, pts.shape[1]))
        probs = weights / weights.sum()
        first = rng.choice(n, p=probs)
        centers[0] = pts[first]
        closest_sq = sq_distances_to(pts, centers[:1]).ravel()
        for i in range(1, self.n_clusters):
            scores = weights * closest_sq
            total = scores.sum()
            if total <= 0:
                # All mass already on chosen centers; pick uniformly.
                idx = rng.integers(n)
            else:
                idx = rng.choice(n, p=scores / total)
            centers[i] = pts[idx]
            new_sq = sq_distances_to(pts, centers[i : i + 1]).ravel()
            np.minimum(closest_sq, new_sq, out=closest_sq)
        return centers

    def _lloyd(
        self, pts: np.ndarray, weights: np.ndarray, centers: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, float]:
        labels = np.zeros(pts.shape[0], dtype=np.int64)
        for _ in range(self.max_iter):
            dists = sq_distances_to(pts, centers)
            labels = dists.argmin(axis=1)
            new_centers = centers.copy()
            for k in range(self.n_clusters):
                mask = labels == k
                mass = weights[mask].sum()
                if mass > 0:
                    new_centers[k] = np.average(
                        pts[mask], axis=0, weights=weights[mask]
                    )
                else:
                    # Reseed an empty cluster at the worst-served point.
                    worst = dists[np.arange(len(labels)), labels].argmax()
                    new_centers[k] = pts[worst]
            shift = np.linalg.norm(new_centers - centers, axis=1).max()
            centers = new_centers
            if shift <= self.tol:
                break
        else:
            warnings.warn(
                f"KMeans did not converge in {self.max_iter} iterations.",
                ConvergenceWarning,
                stacklevel=2,
            )
        dists = sq_distances_to(pts, centers)
        labels = dists.argmin(axis=1)
        inertia = float(
            (weights * dists[np.arange(len(labels)), labels]).sum()
        )
        return centers, labels, inertia
