"""Clustering substrate: the "off the shelf" algorithms of section 3/4.

* :class:`CureClustering` — the hierarchical, representative-point
  algorithm the paper runs on its samples (Guha et al., SIGMOD 1998).
* :class:`Birch` — the CF-tree summarisation clusterer used as a
  non-sampling comparison point (Zhang et al., SIGMOD 1996).
* :class:`KMeans` / :class:`KMedoids` — partitional algorithms; both
  accept inverse-probability weights so they can consume biased samples
  as section 3.1 prescribes.
* :class:`AgglomerativeClustering` — generic Lance-Williams hierarchical
  clustering (also BIRCH's global phase).
"""

from repro.clustering.base import Clusterer, ClusteringResult
from repro.clustering.kmeans import KMeans
from repro.clustering.kmedoids import KMedoids
from repro.clustering.clarans import Clarans
from repro.clustering.sublinear import SublinearKMedian
from repro.clustering.hierarchical import AgglomerativeClustering
from repro.clustering.cure import CureClustering
from repro.clustering.birch import Birch
from repro.clustering.assignment import assign_to_clusters

__all__ = [
    "Clusterer",
    "ClusteringResult",
    "KMeans",
    "KMedoids",
    "Clarans",
    "SublinearKMedian",
    "AgglomerativeClustering",
    "CureClustering",
    "Birch",
    "assign_to_clusters",
]
