"""CURE-style hierarchical clustering (Guha, Rastogi, Shim, SIGMOD 1998).

The algorithm the paper runs on its samples (section 3.1 / 4.2): start
with singletons and repeatedly merge the pair of clusters at minimum
*representative* distance. Each cluster is summarised by up to ``c``
well-scattered points shrunk a fraction ``alpha`` towards the cluster
mean — scattering captures non-spherical shape, shrinking suppresses the
single-link chaining that noise would otherwise cause.

The paper's settings (section 4.2, following the CURE study): ``c = 10``
representatives, ``alpha = 0.3``, one partition.

Implementation notes
--------------------
Cluster-to-cluster distance is the minimum Euclidean distance between
representative sets. A global representative pool (one array, with an
owner id and a liveness flag per row) lets every merge compute the
distances from the new cluster to *all* live clusters in one vectorised
sweep; per-cluster nearest neighbours live in an indexed min-heap, so
each merge costs one pool sweep plus heap updates. CURE's optional
outlier elimination (drop slow-growing singleton clusters part-way
through the hierarchy) is included and enabled by default, as the noise
experiments rely on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.clustering.base import Clusterer, ClusteringResult
from repro.exceptions import ParameterError
from repro.obs import get_recorder
from repro.utils.geometry import sq_distances_to
from repro.utils.heaps import IndexedMinHeap
from repro.utils.validation import check_array, check_fraction

__all__ = [
    "select_scattered_points",
    "CureClustering",
]


@dataclass
class _Cluster:
    members: list[int]
    mean: np.ndarray
    reps: np.ndarray
    rep_rows: list[int] = field(default_factory=list)


def select_scattered_points(
    points: np.ndarray, mean: np.ndarray, n_reps: int
) -> np.ndarray:
    """Pick up to ``n_reps`` well-scattered points (farthest-point walk).

    The first pick is the point farthest from the mean; each subsequent
    pick maximises the distance to the already-chosen set. Returns all
    points when there are no more than ``n_reps``.
    """
    m = points.shape[0]
    if m <= n_reps:
        return points.copy()
    chosen = np.empty(n_reps, dtype=np.int64)
    min_d = sq_distances_to(points, mean[None, :]).ravel()
    for i in range(n_reps):
        pick = int(min_d.argmax())
        chosen[i] = pick
        d_new = sq_distances_to(points, points[pick][None, :]).ravel()
        np.minimum(min_d, d_new, out=min_d)
    return points[chosen]


class CureClustering(Clusterer):
    """Hierarchical clustering with shrunk scattered representatives.

    Parameters
    ----------
    n_clusters:
        Number of clusters to stop at.
    n_representatives:
        Scattered points kept per cluster (``c``; paper uses 10).
    shrink_factor:
        Fraction ``alpha`` each representative moves towards the cluster
        mean (paper uses 0.3).
    remove_outliers:
        Enable CURE's mid-hierarchy outlier elimination: when the number
        of live clusters first falls below ``outlier_check_fraction`` of
        the input size, clusters still holding fewer than
        ``outlier_min_size`` points are dropped as noise.
    outlier_check_fraction, outlier_min_size:
        Elimination tuning (CURE defaults: one third, < 3 points).
    random_state:
        Reserved for API uniformity; the algorithm itself is
        deterministic.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(3)
    >>> blobs = np.vstack([rng.normal(c, 0.05, size=(60, 2))
    ...                    for c in ((0, 0), (1, 1), (0, 1))])
    >>> result = CureClustering(n_clusters=3, random_state=0).fit(blobs)
    >>> result.n_clusters
    3
    """

    def __init__(
        self,
        n_clusters: int = 2,
        n_representatives: int = 10,
        shrink_factor: float = 0.3,
        remove_outliers: bool = True,
        outlier_check_fraction: float = 1.0 / 3.0,
        outlier_min_size: int = 3,
        random_state=None,
    ) -> None:
        if n_clusters < 1:
            raise ParameterError(f"n_clusters must be >= 1; got {n_clusters}.")
        if n_representatives < 1:
            raise ParameterError(
                f"n_representatives must be >= 1; got {n_representatives}."
            )
        self.n_clusters = int(n_clusters)
        self.n_representatives = int(n_representatives)
        self.shrink_factor = check_fraction(shrink_factor, name="shrink_factor")
        self.remove_outliers = bool(remove_outliers)
        self.outlier_check_fraction = check_fraction(
            outlier_check_fraction, name="outlier_check_fraction"
        )
        self.outlier_min_size = int(outlier_min_size)
        self.random_state = random_state  # reserved; algorithm is deterministic
        self.n_distance_sweeps_: int = 0

    # -- public API -----------------------------------------------------------

    def fit(self, points, sample_weight=None) -> ClusteringResult:
        pts = check_array(points, name="points")
        if sample_weight is not None:
            raise ParameterError(
                "CureClustering does not support sample_weight; the paper "
                "uses it on (unweighted) samples directly."
            )
        n = pts.shape[0]
        self._pts = pts
        self.n_distance_sweeps_ = 0
        with get_recorder().phase("cure_fit") as span:
            self._init_state(pts)
            target = min(self.n_clusters, n)
            outlier_trigger = (
                int(np.ceil(n * self.outlier_check_fraction))
                if self.remove_outliers
                else -1
            )
            outliers_done = not self.remove_outliers

            while len(self._clusters) > target and len(self._heap) > 1:
                if not outliers_done and len(self._clusters) <= outlier_trigger:
                    self._eliminate_outliers()
                    outliers_done = True
                    if len(self._clusters) <= target:
                        break
                    continue
                u_id, _ = self._heap.pop()
                v_id = int(self._closest_id[u_id])
                self._merge(u_id, v_id)
            span.set(rows=int(n), clusters=len(self._clusters))

        return self._build_result(pts, n)

    # -- state ------------------------------------------------------------------

    def _init_state(self, pts: np.ndarray) -> None:
        n = pts.shape[0]
        self._clusters: dict[int, _Cluster] = {}
        self._next_id = n
        # Representative pool: grows by <= c rows per merge; compacted
        # when mostly dead.
        cap = max(16, 2 * n)
        self._pool = np.empty((cap, pts.shape[1]))
        self._pool[:n] = pts
        self._owner = np.full(cap, -1, dtype=np.int64)
        self._owner[:n] = np.arange(n)
        self._alive_rows = n
        self._pool_used = n
        # Nearest-neighbour state, dense and id-indexed (ids never
        # exceed 2n: n singletons + at most n-1 merge products).
        self._closest_id = np.full(2 * n + 2, -1, dtype=np.int64)
        self._closest_dist = np.full(2 * n + 2, np.inf)
        self._heap = IndexedMinHeap()
        for i in range(n):
            self._clusters[i] = _Cluster(
                members=[i], mean=pts[i].copy(), reps=pts[i : i + 1].copy(),
                rep_rows=[i],
            )
        self._recompute_all_closest()

    def _recompute_all_closest(self) -> None:
        """Set every cluster's nearest neighbour from scratch."""
        # Clear and refill the heap.
        while len(self._heap):
            self._heap.pop()
        for cid, cluster in self._clusters.items():
            dists = self._dists_to_all(cluster)
            dists[cid] = np.inf
            best = int(dists.argmin())
            self._closest_id[cid] = best
            self._closest_dist[cid] = float(dists[best])
            self._heap.push(cid, float(dists[best]))

    # -- distance machinery --------------------------------------------------------

    def _dists_to_all(self, cluster: _Cluster) -> np.ndarray:
        """Min representative distance from ``cluster`` to every cluster id.

        Returns a dense array indexed by cluster id (inf for dead ids).
        One vectorised sweep over the live representative pool.
        """
        self.n_distance_sweeps_ += 1
        used = self._pool_used
        owners = self._owner[:used]
        live = owners >= 0
        live_reps = self._pool[:used][live]
        live_owners = owners[live]
        get_recorder().count(
            "distance_evals", live_reps.shape[0] * cluster.reps.shape[0]
        )
        # (n_live_reps, n_cluster_reps) squared distances -> per-rep min.
        d = sq_distances_to(live_reps, cluster.reps).min(axis=1)
        out = np.full(self._next_id + 1, np.inf)
        np.minimum.at(out, live_owners, d)
        return np.sqrt(out)

    def _add_reps(self, cid: int, reps: np.ndarray) -> list[int]:
        needed = reps.shape[0]
        if self._pool_used + needed > self._pool.shape[0]:
            self._compact_pool(extra=needed)
        rows = list(range(self._pool_used, self._pool_used + needed))
        self._pool[rows] = reps
        self._owner[rows] = cid
        self._pool_used += needed
        self._alive_rows += needed
        return rows

    def _kill_reps(self, cluster: _Cluster) -> None:
        self._owner[cluster.rep_rows] = -1
        self._alive_rows -= len(cluster.rep_rows)
        cluster.rep_rows = []

    def _compact_pool(self, extra: int) -> None:
        used = self._pool_used
        live = self._owner[:used] >= 0
        kept = int(live.sum())
        cap = max(2 * (kept + extra), 16)
        new_pool = np.empty((cap, self._pool.shape[1]))
        new_owner = np.full(cap, -1, dtype=np.int64)
        new_pool[:kept] = self._pool[:used][live]
        new_owner[:kept] = self._owner[:used][live]
        # Re-point each live cluster at its new rows.
        self._pool, self._owner = new_pool, new_owner
        self._pool_used = kept
        self._alive_rows = kept
        rows_of: dict[int, list[int]] = {}
        for row, owner in enumerate(new_owner[:kept]):
            rows_of.setdefault(int(owner), []).append(row)
        for cid, cluster in self._clusters.items():
            cluster.rep_rows = rows_of.get(cid, [])

    # -- merging ---------------------------------------------------------------------

    def _merge(self, u_id: int, v_id: int) -> None:
        u = self._clusters.pop(u_id)
        v = self._clusters.pop(v_id)
        if v_id in self._heap:
            self._heap.remove(v_id)
        self._kill_reps(u)
        self._kill_reps(v)

        members = u.members + v.members
        size_u, size_v = len(u.members), len(v.members)
        mean = (size_u * u.mean + size_v * v.mean) / (size_u + size_v)
        member_pts = self._pts[members]
        scattered = select_scattered_points(
            member_pts, mean, self.n_representatives
        )
        reps = scattered + self.shrink_factor * (mean - scattered)

        w_id = self._next_id
        self._next_id += 1
        w = _Cluster(members=members, mean=mean, reps=reps)
        w.rep_rows = self._add_reps(w_id, reps)
        self._clusters[w_id] = w

        dists = self._dists_to_all(w)
        self._rewire_after_change(w_id, w, dists, removed=(u_id, v_id))

    def _rewire_after_change(
        self,
        w_id: int,
        w: _Cluster,
        dists: np.ndarray,
        removed: tuple[int, ...],
    ) -> None:
        """Fix nearest-neighbour pointers after ``w`` replaced ``removed``.

        The scan over live clusters is vectorised: per-cluster state is
        read from dense id-indexed arrays, the three update cases are
        computed as masks, and only the (few) clusters that actually
        change touch the heap or need a rescan.
        """
        ids = np.fromiter(
            (cid for cid in self._clusters if cid != w_id),
            dtype=np.int64,
            count=len(self._clusters) - 1,
        )
        if ids.size == 0:
            return
        d_xw = dists[ids]
        closest = self._closest_id[ids]
        closest_dist = self._closest_dist[ids]

        orphaned = np.isin(closest, removed)
        adopt = (orphaned & (d_xw <= closest_dist)) | (
            ~orphaned & (d_xw < closest_dist)
        )
        rescan = orphaned & ~adopt

        adopt_ids = ids[adopt]
        self._closest_id[adopt_ids] = w_id
        self._closest_dist[adopt_ids] = d_xw[adopt]
        for cid, dist in zip(adopt_ids, d_xw[adopt]):
            self._heap.push(int(cid), float(dist))
        for cid in ids[rescan]:
            # The old parent vanished and the merged cluster is farther
            # than it was: only a full rescan finds the new nearest.
            cid = int(cid)
            x_d = self._dists_to_all(self._clusters[cid])
            x_d[cid] = np.inf
            nearest = int(x_d.argmin())
            self._closest_id[cid] = nearest
            self._closest_dist[cid] = float(x_d[nearest])
            self._heap.push(cid, float(x_d[nearest]))

        best_pos = int(d_xw.argmin())
        self._closest_id[w_id] = int(ids[best_pos])
        self._closest_dist[w_id] = float(d_xw[best_pos])
        self._heap.push(w_id, float(d_xw[best_pos]))

    # -- outlier elimination ------------------------------------------------------------

    def _eliminate_outliers(self) -> None:
        """Drop clusters that grew slower than ``outlier_min_size``."""
        doomed = [
            cid
            for cid, cluster in self._clusters.items()
            if len(cluster.members) < self.outlier_min_size
        ]
        if len(doomed) == len(self._clusters):
            # Everything is tiny (e.g. pure-noise input); keep the data.
            return
        for cid in doomed:
            cluster = self._clusters.pop(cid)
            self._kill_reps(cluster)
            if cid in self._heap:
                self._heap.remove(cid)
        self._recompute_all_closest()

    # -- result ------------------------------------------------------------------------

    def _build_result(self, pts: np.ndarray, n: int) -> ClusteringResult:
        order = sorted(
            self._clusters.items(), key=lambda kv: -len(kv[1].members)
        )
        labels = np.full(n, -1, dtype=np.int64)
        centers = np.empty((len(order), pts.shape[1]))
        representatives = []
        sizes = np.empty(len(order), dtype=np.int64)
        for new_id, (_, cluster) in enumerate(order):
            labels[cluster.members] = new_id
            centers[new_id] = cluster.mean
            representatives.append(cluster.reps.copy())
            sizes[new_id] = len(cluster.members)
        # Free the fit-time state.
        del self._pts, self._pool, self._owner, self._clusters, self._heap
        del self._closest_id, self._closest_dist
        return ClusteringResult(
            labels=labels,
            centers=centers,
            representatives=representatives,
            sizes=sizes,
        )
