"""Evaluation criteria from section 4 of the paper."""

from repro.evaluation.cluster_match import (
    birch_found_clusters,
    count_found_clusters,
    found_clusters,
)
from repro.evaluation.agreement import (
    adjusted_rand_index,
    contingency_table,
    normalized_mutual_information,
    purity,
)
from repro.evaluation.metrics import (
    density_order_preservation,
    noise_fraction_in_sample,
    outlier_precision_recall,
    sample_share_per_cluster,
)

__all__ = [
    "found_clusters",
    "count_found_clusters",
    "birch_found_clusters",
    "outlier_precision_recall",
    "density_order_preservation",
    "noise_fraction_in_sample",
    "sample_share_per_cluster",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "purity",
    "contingency_table",
]
