"""Label-agreement metrics: ARI, NMI, purity.

Complementary to the paper's found-cluster criterion: where that
criterion asks "did we locate the true regions?", these compare full
point-level label assignments — useful once
:func:`~repro.clustering.assignment.assign_to_clusters` has labelled
the whole dataset from a clustered sample. Points labelled ``-1``
(noise / eliminated) in *either* labelling are excluded, matching the
convention of the generators and of CURE's outlier removal.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError

__all__ = [
    "contingency_table",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "purity",
]


def _paired_labels(truth, predicted) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(truth, dtype=np.int64)
    b = np.asarray(predicted, dtype=np.int64)
    if a.shape != b.shape or a.ndim != 1:
        raise ParameterError(
            "truth and predicted must be 1-D arrays of equal length."
        )
    keep = (a >= 0) & (b >= 0)
    if not keep.any():
        raise ParameterError("no points remain after removing noise labels.")
    return a[keep], b[keep]


def contingency_table(truth, predicted) -> np.ndarray:
    """Counts of points per (true cluster, predicted cluster) pair."""
    a, b = _paired_labels(truth, predicted)
    n_a = int(a.max()) + 1
    n_b = int(b.max()) + 1
    table = np.zeros((n_a, n_b), dtype=np.int64)
    np.add.at(table, (a, b), 1)
    return table


def adjusted_rand_index(truth, predicted) -> float:
    """Hubert-Arabie adjusted Rand index in [-1, 1]; 1 = identical
    partitions, ~0 = chance agreement.

    >>> adjusted_rand_index([0, 0, 1, 1], [1, 1, 0, 0])
    1.0
    """
    table = contingency_table(truth, predicted)
    n = table.sum()

    def comb2(x):
        return x * (x - 1) / 2.0

    sum_cells = comb2(table).sum()
    sum_rows = comb2(table.sum(axis=1)).sum()
    sum_cols = comb2(table.sum(axis=0)).sum()
    expected = sum_rows * sum_cols / comb2(n) if n > 1 else 0.0
    max_index = (sum_rows + sum_cols) / 2.0
    if max_index == expected:
        return 1.0  # both partitions trivial (single cluster each)
    return float((sum_cells - expected) / (max_index - expected))


def normalized_mutual_information(truth, predicted) -> float:
    """NMI with arithmetic-mean normalisation, in [0, 1].

    >>> normalized_mutual_information([0, 0, 1, 1], [0, 0, 1, 1])
    1.0
    """
    table = contingency_table(truth, predicted).astype(np.float64)
    n = table.sum()
    joint = table / n
    p_a = joint.sum(axis=1)
    p_b = joint.sum(axis=0)
    nz = joint > 0
    mutual = float(
        (joint[nz] * np.log(joint[nz] / np.outer(p_a, p_b)[nz])).sum()
    )
    h_a = float(-(p_a[p_a > 0] * np.log(p_a[p_a > 0])).sum())
    h_b = float(-(p_b[p_b > 0] * np.log(p_b[p_b > 0])).sum())
    denom = (h_a + h_b) / 2.0
    if denom == 0.0:
        return 1.0
    return max(0.0, min(1.0, mutual / denom))


def purity(truth, predicted) -> float:
    """Fraction of points whose predicted cluster's majority true
    cluster matches their own true cluster.

    >>> purity([0, 0, 1, 1], [0, 0, 0, 1])
    0.75
    """
    table = contingency_table(truth, predicted)
    return float(table.max(axis=0).sum() / table.sum())
