"""The paper's found-cluster criteria (section 4.3).

For the hierarchical algorithm: "a cluster is found if at least 90% of
its representative points are in the interior of the same cluster in the
synthetic dataset". For BIRCH, which reports centers and radii: "if it
reports a cluster center that lies in the interior of a cluster in the
synthetic dataset, we assume that this cluster is found".
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import ClusteringResult
from repro.datasets.shapes import ClusterShape
from repro.exceptions import ParameterError
from repro.utils.validation import check_fraction

__all__ = [
    "found_clusters",
    "count_found_clusters",
    "birch_found_clusters",
]


def found_clusters(
    result: ClusteringResult,
    true_clusters: list[ClusterShape],
    threshold: float = 0.9,
) -> set[int]:
    """True-cluster indices found by a representative-based clustering.

    A found cluster "claims" true cluster ``t`` when at least
    ``threshold`` of its representatives fall inside ``t``. Returns the
    set of distinct claimed true clusters — a found cluster whose
    representatives straddle several true clusters (a merge mistake)
    claims none, and several found clusters claiming the same true
    cluster (a split mistake) count once.
    """
    check_fraction(threshold, name="threshold")
    if not true_clusters:
        raise ParameterError("true_clusters must be non-empty.")
    claimed: set[int] = set()
    for reps in result.representatives:
        if reps.shape[0] == 0:
            continue
        for t_idx, shape in enumerate(true_clusters):
            inside = shape.contains(reps).mean()
            if inside >= threshold:
                claimed.add(t_idx)
                break
    return claimed


def count_found_clusters(
    result: ClusteringResult,
    true_clusters: list[ClusterShape],
    threshold: float = 0.9,
) -> int:
    """``len(found_clusters(...))`` — the y-axis of Figures 4-7."""
    return len(found_clusters(result, true_clusters, threshold))


def birch_found_clusters(
    result: ClusteringResult, true_clusters: list[ClusterShape]
) -> set[int]:
    """True clusters found under the BIRCH criterion (center inside)."""
    if not true_clusters:
        raise ParameterError("true_clusters must be non-empty.")
    claimed: set[int] = set()
    for center in np.atleast_2d(result.centers):
        for t_idx, shape in enumerate(true_clusters):
            if bool(shape.contains(center[None, :])[0]):
                claimed.add(t_idx)
                break
    return claimed
