"""Quantitative metrics: outlier precision/recall, Lemma 1 checks,
sample composition diagnostics."""

from __future__ import annotations

import numpy as np

from repro.core.biased import BiasedSample
from repro.datasets.shapes import ClusterShape
from repro.datasets.synthetic import NOISE_LABEL, SyntheticDataset
from repro.exceptions import ParameterError

__all__ = [
    "outlier_precision_recall",
    "density_order_preservation",
    "noise_fraction_in_sample",
    "sample_share_per_cluster",
]


def outlier_precision_recall(
    predicted, truth
) -> tuple[float, float]:
    """Precision and recall of a predicted outlier index set.

    >>> outlier_precision_recall([1, 2, 3], [2, 3, 4])
    (0.6666666666666666, 0.6666666666666666)
    """
    predicted_set = set(np.asarray(predicted, dtype=np.int64).tolist())
    truth_set = set(np.asarray(truth, dtype=np.int64).tolist())
    if not predicted_set and not truth_set:
        return 1.0, 1.0
    hits = len(predicted_set & truth_set)
    precision = hits / len(predicted_set) if predicted_set else 1.0
    recall = hits / len(truth_set) if truth_set else 1.0
    return precision, recall


def density_order_preservation(
    data: np.ndarray,
    sample_points: np.ndarray,
    region_pairs: list[tuple[ClusterShape, ClusterShape]],
) -> float:
    """Fraction of region pairs whose density *order* survives sampling.

    Lemma 1 of the paper: for exponent ``a > -1``, if region A is denser
    than region B in the dataset then, with high probability, A is
    denser than B in the sample as well. For each supplied (A, B) pair
    this computes per-volume point counts in the data and in the sample
    and checks whether the strict order is preserved (ties in the data
    count as preserved).
    """
    if not region_pairs:
        raise ParameterError("region_pairs must be non-empty.")
    preserved = 0
    for region_a, region_b in region_pairs:
        data_a = region_a.contains(data).sum() / region_a.volume
        data_b = region_b.contains(data).sum() / region_b.volume
        samp_a = region_a.contains(sample_points).sum() / region_a.volume
        samp_b = region_b.contains(sample_points).sum() / region_b.volume
        if data_a == data_b:
            preserved += 1
        elif (data_a > data_b) == (samp_a > samp_b):
            preserved += 1
    return preserved / len(region_pairs)


def noise_fraction_in_sample(
    sample: BiasedSample, dataset: SyntheticDataset
) -> float:
    """Share of a sample's points that are noise in the ground truth.

    The mechanism behind Figure 4: with ``a > 0`` the biased sample
    carries far less noise than the dataset, so the clustering algorithm
    sees cleaner structure.
    """
    if len(sample) == 0:
        return 0.0
    labels = dataset.labels[sample.indices]
    return float((labels == NOISE_LABEL).mean())


def sample_share_per_cluster(
    sample: BiasedSample, dataset: SyntheticDataset
) -> np.ndarray:
    """For each true cluster, the fraction of its points in the sample.

    The quantity Theorem 1 reasons about (cluster inclusion): index
    ``i`` holds ``|sample ∩ cluster_i| / |cluster_i|``.
    """
    shares = np.zeros(dataset.n_clusters)
    sample_labels = dataset.labels[sample.indices]
    sizes = dataset.cluster_sizes()
    for label in range(dataset.n_clusters):
        if sizes[label] > 0:
            shares[label] = (sample_labels == label).sum() / sizes[label]
    return shares
