"""Parametric stand-ins for the paper's geospatial datasets.

The paper evaluates on two real postal-address datasets that cannot be
redistributed: *NorthEast* (130,000 addresses in the North-Eastern US)
and *California* (62,553 addresses). What the experiments rely on is
their density structure, not the exact coordinates: a few extremely
dense metropolitan cores embedded in a wide scatter of rural addresses
and smaller population centers — the scatter acts as natural "noise"
that drowns uniform samples, while density-biased sampling still finds
the metros (section 4.3, "Real Datasets").

The simulators reproduce that structure: anisotropic Gaussian metro
cores (with the paper's named metros), a ring of mid-size towns, and a
broad rural background. Ground-truth shapes for the evaluation criterion
are 2-sigma ellipses around each metro.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.shapes import ClusterShape, Ellipsoid
from repro.datasets.synthetic import NOISE_LABEL, SyntheticDataset
from repro.utils.validation import check_random_state

__all__ = [
    "northeast_dataset",
    "california_dataset",
]

# Metro layout: (center_x, center_y, sigma_x, sigma_y, share of points).
_NORTHEAST_METROS = (
    ("New York", 0.42, 0.38, 0.022, 0.018, 0.26),
    ("Philadelphia", 0.30, 0.26, 0.016, 0.014, 0.12),
    ("Boston", 0.72, 0.62, 0.016, 0.014, 0.12),
)

_CALIFORNIA_METROS = (
    ("Los Angeles", 0.62, 0.25, 0.030, 0.022, 0.28),
    ("San Francisco Bay", 0.28, 0.62, 0.022, 0.020, 0.18),
    ("San Diego", 0.70, 0.12, 0.014, 0.012, 0.08),
)


def _metro_dataset(
    metros,
    n_points: int,
    n_towns: int,
    town_share: float,
    rural_share: float,
    random_state,
) -> SyntheticDataset:
    rng = check_random_state(random_state)
    parts: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    clusters: list[ClusterShape] = []

    for label, (_, cx, cy, sx, sy, share) in enumerate(metros):
        count = int(share * n_points)
        pts = rng.normal((cx, cy), (sx, sy), size=(count, 2))
        parts.append(pts)
        labels.append(np.full(count, label, dtype=np.int64))
        clusters.append(Ellipsoid((cx, cy), (2.0 * sx, 2.0 * sy)))

    # Mid-size towns: small Gaussian puffs scattered over the region.
    # They are part of the "widely distributed rural areas and smaller
    # population centers" the paper calls noise — no ground-truth shape.
    n_town_pts = int(town_share * n_points)
    town_centers = rng.uniform(0.05, 0.95, size=(n_towns, 2))
    per_town = rng.multinomial(n_town_pts, np.full(n_towns, 1.0 / n_towns))
    for center, count in zip(town_centers, per_town):
        pts = rng.normal(center, 0.01, size=(int(count), 2))
        parts.append(pts)
        labels.append(np.full(int(count), NOISE_LABEL, dtype=np.int64))

    # Rural background.
    n_rural = int(rural_share * n_points)
    parts.append(rng.uniform(0.0, 1.0, size=(n_rural, 2)))
    labels.append(np.full(n_rural, NOISE_LABEL, dtype=np.int64))

    points = np.clip(np.vstack(parts), 0.0, 1.0)
    label_arr = np.concatenate(labels)
    order = rng.permutation(points.shape[0])
    return SyntheticDataset(
        points=points[order],
        labels=label_arr[order],
        clusters=clusters,
        noise_fraction=town_share + rural_share,
    )


def northeast_dataset(
    n_points: int = 130_000, random_state=None
) -> SyntheticDataset:
    """NorthEast stand-in: NY / Philadelphia / Boston metro cores plus
    towns and rural scatter (130k points, like the original).

    >>> data = northeast_dataset(n_points=5000, random_state=0)
    >>> data.n_clusters
    3
    """
    return _metro_dataset(
        _NORTHEAST_METROS,
        n_points=n_points,
        n_towns=60,
        town_share=0.25,
        rural_share=0.25,
        random_state=random_state,
    )


def california_dataset(
    n_points: int = 62_553, random_state=None
) -> SyntheticDataset:
    """California stand-in: LA / Bay Area / San Diego cores plus the
    central-valley town string and rural scatter (62,553 points)."""
    return _metro_dataset(
        _CALIFORNIA_METROS,
        n_points=n_points,
        n_towns=40,
        town_share=0.26,
        rural_share=0.20,
        random_state=random_state,
    )
