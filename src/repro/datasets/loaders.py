"""Save/load generated datasets.

Datasets regenerate deterministically from seeds, but persisting them is
useful for sharing exact experiment inputs and for feeding external
tools. The ``.npz`` format round-trips points + labels (cluster shapes
regenerate from the seed; they are generator metadata, not data).
"""

from __future__ import annotations

import os

import numpy as np

from repro.datasets.synthetic import SyntheticDataset
from repro.exceptions import DataValidationError

__all__ = [
    "save_dataset",
    "load_dataset",
]


def save_dataset(dataset: SyntheticDataset, path: str) -> None:
    """Write points/labels/noise fraction to an ``.npz`` file.

    >>> import tempfile
    >>> from repro.datasets import make_clustered_dataset
    >>> data = make_clustered_dataset(n_points=100, n_clusters=2,
    ...                               random_state=0)
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     save_dataset(data, os.path.join(tmp, "d.npz"))
    ...     again = load_dataset(os.path.join(tmp, "d.npz"))
    >>> bool((again.points == data.points).all())
    True
    """
    np.savez_compressed(
        path,
        points=dataset.points,
        labels=dataset.labels,
        noise_fraction=np.array([dataset.noise_fraction]),
    )


def load_dataset(path: str) -> SyntheticDataset:
    """Read a dataset saved by :func:`save_dataset`.

    The cluster shape list is empty after loading — membership ground
    truth is carried by the labels.
    """
    if not os.path.exists(path):
        raise DataValidationError(f"no dataset file at {path!r}.")
    with np.load(path) as archive:
        try:
            points = archive["points"]
            labels = archive["labels"]
            noise_fraction = float(archive["noise_fraction"][0])
        except KeyError as exc:
            raise DataValidationError(
                f"{path!r} is not a repro dataset archive (missing {exc})."
            ) from exc
    return SyntheticDataset(
        points=points,
        labels=labels,
        clusters=[],
        noise_fraction=noise_fraction,
    )
