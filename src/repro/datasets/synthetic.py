"""The paper's synthetic cluster generator (section 4.1).

Clusters are hyper-rectangles with uniformly distributed interiors;
their shape (aspect ratio), size (point count) and average density can
all vary. Noise is added as uniform points over the whole domain: for a
clustered dataset ``D`` and noise level ``fn``, ``fn * |D|`` uniform
points are appended (the paper varies ``fn`` from 5% to 80%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.shapes import ClusterShape, HyperRectangle
from repro.exceptions import ParameterError
from repro.utils.validation import check_fraction, check_random_state

__all__ = [
    "NOISE_LABEL",
    "SyntheticDataset",
    "make_clustered_dataset",
    "add_noise",
    "make_fig4_dataset",
    "make_fig5_dataset",
    "ds1_dataset",
    "ds2_dataset",
]

NOISE_LABEL = -1


@dataclass
class SyntheticDataset:
    """A generated dataset with its ground truth.

    Attributes
    ----------
    points:
        All points (cluster points then noise), shuffled.
    labels:
        True generating cluster per point; ``-1`` for noise.
    clusters:
        The generating shapes, index-aligned with the labels.
    noise_fraction:
        The ``fn`` used at generation time.
    """

    points: np.ndarray
    labels: np.ndarray
    clusters: list[ClusterShape]
    noise_fraction: float = 0.0

    @property
    def n_points(self) -> int:
        return self.points.shape[0]

    @property
    def n_dims(self) -> int:
        return self.points.shape[1]

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def cluster_sizes(self) -> np.ndarray:
        """Point count per true cluster (noise excluded)."""
        sizes = np.zeros(len(self.clusters), dtype=np.int64)
        for label in range(len(self.clusters)):
            sizes[label] = int((self.labels == label).sum())
        return sizes


def _random_box(
    center: np.ndarray,
    volume: float,
    rng: np.random.Generator,
    max_aspect: float,
) -> HyperRectangle:
    """A box of the given volume around ``center`` with random aspect."""
    d = center.shape[0]
    # Random per-dimension stretch factors with product 1, then scale to
    # match the requested volume.
    log_stretch = rng.uniform(-np.log(max_aspect), np.log(max_aspect), size=d)
    log_stretch -= log_stretch.mean()
    sides = np.exp(log_stretch) * volume ** (1.0 / d)
    lows = center - sides / 2.0
    highs = center + sides / 2.0
    return HyperRectangle(np.clip(lows, 0.0, 1.0), np.clip(highs, lows + 1e-9, 1.0))


def make_clustered_dataset(
    n_points: int = 100_000,
    n_clusters: int = 10,
    n_dims: int = 2,
    noise_fraction: float = 0.0,
    density_ratio: float = 1.0,
    size_ratio: float = 1.0,
    max_aspect: float = 2.0,
    cluster_volume_fraction: float = 0.05,
    correlate_size_density: bool = False,
    random_state=None,
) -> SyntheticDataset:
    """Generate the paper's synthetic workload.

    Parameters
    ----------
    n_points:
        Cluster points (noise is added *on top*, as in the paper).
    n_clusters:
        Number of hyper-rectangular clusters (paper: 10 to 100).
    n_dims:
        Dimensionality (paper: 2 to 5).
    noise_fraction:
        ``fn``: uniform noise points added as a fraction of ``n_points``.
    density_ratio:
        Ratio between the densest and sparsest cluster (Figure 5 uses
        10). Densities are log-spaced across clusters.
    size_ratio:
        Ratio between the largest and smallest cluster point count.
    max_aspect:
        Maximum per-dimension stretch of a cluster box (non-spherical
        shapes).
    cluster_volume_fraction:
        Total volume of all cluster boxes as a fraction of the unit
        cube, before density adjustments.
    correlate_size_density:
        When true, the smallest clusters are also the sparsest (the
        Figure 5 scenario: "the size and density of some clusters is
        very small in relation to other clusters"); when false, sizes
        and densities are assigned independently at random.
    random_state:
        Seed.

    Examples
    --------
    >>> data = make_clustered_dataset(n_points=1000, n_clusters=4,
    ...                               noise_fraction=0.5, random_state=0)
    >>> data.n_points
    1500
    >>> int((data.labels == NOISE_LABEL).sum())
    500
    """
    if n_clusters < 1:
        raise ParameterError(f"n_clusters must be >= 1; got {n_clusters}.")
    if n_points < n_clusters:
        raise ParameterError("n_points must be >= n_clusters.")
    if density_ratio < 1.0 or size_ratio < 1.0:
        raise ParameterError("density_ratio and size_ratio must be >= 1.")
    check_fraction(cluster_volume_fraction, name="cluster_volume_fraction")
    rng = check_random_state(random_state)

    # Cluster point counts: log-spaced between 1 and size_ratio.
    weights = np.logspace(0.0, np.log10(size_ratio), n_clusters)
    # Per-cluster densities: log-spaced between 1 and density_ratio.
    densities = np.logspace(0.0, np.log10(density_ratio), n_clusters)
    if correlate_size_density:
        # Aligned ascending: small clusters are sparse, big ones dense.
        order = rng.permutation(n_clusters)
        weights, densities = weights[order], densities[order]
    else:
        rng.shuffle(weights)
        rng.shuffle(densities)
    counts = np.maximum(1, (n_points * weights / weights.sum()).astype(int))
    counts[-1] += n_points - counts.sum()  # exact total
    # Volumes follow from counts and densities, then are rescaled so the
    # boxes occupy cluster_volume_fraction of the unit cube in total.
    volumes = counts / densities
    volumes *= cluster_volume_fraction / volumes.sum()

    centers = _spread_centers(n_clusters, n_dims, volumes, rng)
    clusters: list[ClusterShape] = []
    parts: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    for label, (center, volume, count) in enumerate(
        zip(centers, volumes, counts)
    ):
        box = _random_box(center, float(volume), rng, max_aspect)
        clusters.append(box)
        parts.append(box.sample(int(count), rng))
        labels.append(np.full(int(count), label, dtype=np.int64))

    n_noise = int(round(noise_fraction * n_points))
    if n_noise:
        parts.append(rng.random((n_noise, n_dims)))
        labels.append(np.full(n_noise, NOISE_LABEL, dtype=np.int64))

    points = np.vstack(parts)
    label_arr = np.concatenate(labels)
    order = rng.permutation(points.shape[0])
    return SyntheticDataset(
        points=points[order],
        labels=label_arr[order],
        clusters=clusters,
        noise_fraction=noise_fraction,
    )


def _spread_centers(
    n_clusters: int,
    n_dims: int,
    volumes: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Place cluster centers with best-effort separation.

    Rejection sampling on the pairwise center distance, relaxing the
    separation requirement if placement keeps failing.
    """
    margin = 0.5 * volumes.max() ** (1.0 / n_dims)
    lo, hi = min(margin, 0.4), 1.0 - min(margin, 0.4)
    separation = 2.2 * margin
    centers: list[np.ndarray] = []
    attempts = 0
    while len(centers) < n_clusters:
        candidate = rng.uniform(lo, hi, size=n_dims)
        ok = all(
            np.linalg.norm(candidate - c) >= separation for c in centers
        )
        if ok:
            centers.append(candidate)
        attempts += 1
        if attempts > 200 * n_clusters:
            separation *= 0.8
            attempts = 0
    return np.array(centers)


def add_noise(
    dataset: SyntheticDataset, noise_fraction: float, random_state=None
) -> SyntheticDataset:
    """Return a copy of ``dataset`` with extra uniform noise appended.

    The fraction is relative to the dataset's *cluster* points, matching
    the paper's definition of ``fn``.
    """
    check_fraction(noise_fraction, name="noise_fraction")
    rng = check_random_state(random_state)
    n_cluster_pts = int((dataset.labels != NOISE_LABEL).sum())
    n_noise = int(round(noise_fraction * n_cluster_pts))
    noise = rng.random((n_noise, dataset.n_dims))
    points = np.vstack([dataset.points, noise])
    labels = np.concatenate(
        [dataset.labels, np.full(n_noise, NOISE_LABEL, dtype=np.int64)]
    )
    order = rng.permutation(points.shape[0])
    return SyntheticDataset(
        points=points[order],
        labels=labels[order],
        clusters=list(dataset.clusters),
        noise_fraction=dataset.noise_fraction + noise_fraction,
    )


# -- named configurations from the paper ------------------------------------------


def make_fig4_dataset(
    n_dims: int = 2,
    noise_fraction: float = 0.2,
    n_points: int = 100_000,
    random_state=None,
) -> SyntheticDataset:
    """Figure 4 workload: 100k points, 10 clusters of different
    densities, plus ``fn`` noise (5%-80% in the sweep)."""
    return make_clustered_dataset(
        n_points=n_points,
        n_clusters=10,
        n_dims=n_dims,
        noise_fraction=noise_fraction,
        density_ratio=3.0,
        size_ratio=2.0,
        random_state=random_state,
    )


def make_fig5_dataset(
    n_dims: int = 2,
    noise_fraction: float = 0.1,
    n_points: int = 100_000,
    random_state=None,
) -> SyntheticDataset:
    """Figure 5 workload: cluster density varying by a factor of 10 with
    correlated, strongly varying sizes — the small clusters are also the
    sparse ones, so a uniform sample loses them behind the large dense
    clusters.

    Cluster extent is held at roughly the same per-attribute side
    length across dimensionalities (a fixed *volume* fraction would give
    degenerate near-domain-sized boxes in 5-D).
    """
    side = 0.16  # matches the tuned 2-D layout: 10 * 0.16^2 ~ 0.25
    volume_fraction = min(0.4, 10 * side**n_dims)
    return make_clustered_dataset(
        n_points=n_points,
        n_clusters=10,
        n_dims=n_dims,
        noise_fraction=noise_fraction,
        density_ratio=10.0,
        size_ratio=20.0,
        max_aspect=1.5,
        cluster_volume_fraction=volume_fraction,
        correlate_size_density=True,
        random_state=random_state,
    )


def ds1_dataset(n_points: int = 100_000, random_state=None) -> SyntheticDataset:
    """DS1 of Figure 7: 10 equal-size clusters plus 50% noise."""
    return make_clustered_dataset(
        n_points=n_points,
        n_clusters=10,
        n_dims=2,
        noise_fraction=0.5,
        density_ratio=1.0,
        size_ratio=1.0,
        random_state=random_state,
    )


def ds2_dataset(n_points: int = 100_000, random_state=None) -> SyntheticDataset:
    """DS2 of Figure 7: 10 clusters of very different sizes plus 20%
    noise (density estimation accuracy matters most here)."""
    return make_clustered_dataset(
        n_points=n_points,
        n_clusters=10,
        n_dims=2,
        noise_fraction=0.2,
        density_ratio=10.0,
        size_ratio=20.0,
        correlate_size_density=True,
        random_state=random_state,
    )
