"""Workload generators for the paper's experiments.

The synthetic generator reproduces section 4.1: clusters are
hyper-rectangles with uniformly distributed interiors, varying shape,
size and density, plus a configurable fraction of uniform background
noise. The geospatial and forest modules are parametric stand-ins for
the real datasets (NorthEast / California postal addresses, UCI Forest
Cover) that cannot ship with an offline reproduction — see DESIGN.md's
substitution table.
"""

from repro.datasets.shapes import Ball, ClusterShape, Ellipsoid, HyperRectangle
from repro.datasets.synthetic import (
    SyntheticDataset,
    ds1_dataset,
    ds2_dataset,
    make_clustered_dataset,
    make_fig4_dataset,
    make_fig5_dataset,
)
from repro.datasets.cure_dataset import cure_dataset1
from repro.datasets.geospatial import california_dataset, northeast_dataset
from repro.datasets.forest import forest_cover_dataset
from repro.datasets.outlier_data import make_outlier_dataset
from repro.datasets.loaders import load_dataset, save_dataset

__all__ = [
    "ClusterShape",
    "HyperRectangle",
    "Ball",
    "Ellipsoid",
    "SyntheticDataset",
    "make_clustered_dataset",
    "make_fig4_dataset",
    "make_fig5_dataset",
    "ds1_dataset",
    "ds2_dataset",
    "cure_dataset1",
    "northeast_dataset",
    "california_dataset",
    "forest_cover_dataset",
    "make_outlier_dataset",
    "save_dataset",
    "load_dataset",
]
