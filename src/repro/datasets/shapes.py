"""Geometric cluster shapes used by the generators and the evaluation.

Each shape can *sample* uniform points from its interior (generation)
and answer membership queries (the paper's found-cluster criterion asks
whether representatives lie "in the interior of the same cluster in the
synthetic dataset").
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ParameterError
from repro.utils.geometry import ball_volume
from repro.utils.validation import check_random_state

__all__ = [
    "ClusterShape",
    "HyperRectangle",
    "Ellipsoid",
    "Ball",
]


class ClusterShape(abc.ABC):
    """A region of space that generated one true cluster."""

    @abc.abstractmethod
    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean membership mask for each row of ``points``."""

    @abc.abstractmethod
    def sample(self, n: int, random_state=None) -> np.ndarray:
        """Draw ``n`` uniform points from the interior."""

    @property
    @abc.abstractmethod
    def center(self) -> np.ndarray:
        """Geometric center of the shape."""

    @property
    @abc.abstractmethod
    def volume(self) -> float:
        """Interior volume."""


class HyperRectangle(ClusterShape):
    """Axis-aligned box — the paper's cluster shape (section 4.1).

    >>> box = HyperRectangle([0.0, 0.0], [1.0, 2.0])
    >>> bool(box.contains(np.array([[0.5, 1.0]]))[0])
    True
    """

    def __init__(self, lows, highs) -> None:
        self.lows = np.asarray(lows, dtype=np.float64)
        self.highs = np.asarray(highs, dtype=np.float64)
        if self.lows.shape != self.highs.shape or self.lows.ndim != 1:
            raise ParameterError("lows and highs must be 1-D and equal-length.")
        if (self.highs <= self.lows).any():
            raise ParameterError("each high must exceed its low.")

    def contains(self, points: np.ndarray) -> np.ndarray:
        points = np.atleast_2d(points)
        return ((points >= self.lows) & (points <= self.highs)).all(axis=1)

    def sample(self, n: int, random_state=None) -> np.ndarray:
        rng = check_random_state(random_state)
        return rng.uniform(self.lows, self.highs, size=(n, self.lows.shape[0]))

    @property
    def center(self) -> np.ndarray:
        return (self.lows + self.highs) / 2.0

    @property
    def volume(self) -> float:
        return float(np.prod(self.highs - self.lows))


class Ellipsoid(ClusterShape):
    """Axis-aligned ellipsoid: ``sum_j ((x_j - c_j)/r_j)^2 <= 1``."""

    def __init__(self, center, radii) -> None:
        self._center = np.asarray(center, dtype=np.float64)
        self.radii = np.asarray(radii, dtype=np.float64)
        if self._center.shape != self.radii.shape or self._center.ndim != 1:
            raise ParameterError("center and radii must be 1-D, equal-length.")
        if (self.radii <= 0).any():
            raise ParameterError("radii must be strictly positive.")

    def contains(self, points: np.ndarray) -> np.ndarray:
        points = np.atleast_2d(points)
        scaled = (points - self._center) / self.radii
        return (scaled**2).sum(axis=1) <= 1.0

    def sample(self, n: int, random_state=None) -> np.ndarray:
        rng = check_random_state(random_state)
        d = self._center.shape[0]
        directions = rng.standard_normal((n, d))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        radii = rng.random(n) ** (1.0 / d)
        return self._center + directions * radii[:, None] * self.radii

    @property
    def center(self) -> np.ndarray:
        return self._center.copy()

    @property
    def volume(self) -> float:
        d = self._center.shape[0]
        return ball_volume(1.0, d) * float(np.prod(self.radii))


class Ball(Ellipsoid):
    """Euclidean ball: an ellipsoid with equal radii."""

    def __init__(self, center, radius: float) -> None:
        center = np.asarray(center, dtype=np.float64)
        if radius <= 0:
            raise ParameterError(f"radius must be > 0; got {radius}.")
        super().__init__(center, np.full(center.shape[0], float(radius)))
        self.radius = float(radius)
