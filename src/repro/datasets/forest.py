"""A Forest-Cover-like higher-dimensional dataset.

The paper's third real dataset is the UCI Forest Cover data (59,000
points, US Forest Service cartographic variables). The property the
experiments use is that it is a *moderately high-dimensional* dataset
whose cover types form clusters of very different sizes and spreads in
the continuous attributes. The simulator draws each "cover type" as an
anisotropic Gaussian in ``n_dims`` attributes with log-spaced class
sizes, over a diffuse background — the same size/density imbalance.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.shapes import ClusterShape, Ellipsoid
from repro.datasets.synthetic import NOISE_LABEL, SyntheticDataset
from repro.exceptions import ParameterError
from repro.utils.validation import check_random_state

__all__ = ["forest_cover_dataset"]


def forest_cover_dataset(
    n_points: int = 59_000,
    n_dims: int = 6,
    n_cover_types: int = 7,
    background_fraction: float = 0.15,
    random_state=None,
) -> SyntheticDataset:
    """Generate the Forest-Cover stand-in.

    Parameters
    ----------
    n_points:
        Total points (59,000 matches the subset the paper uses).
    n_dims:
        Continuous attributes (the real data has 10 quantitative ones).
    n_cover_types:
        Number of classes (the real data has 7 cover types).
    background_fraction:
        Diffuse non-cluster points.
    random_state:
        Seed or generator for the draws.

    >>> data = forest_cover_dataset(n_points=2000, random_state=0)
    >>> data.n_clusters
    7
    """
    if n_cover_types < 1:
        raise ParameterError(
            f"n_cover_types must be >= 1; got {n_cover_types}."
        )
    rng = check_random_state(random_state)
    n_background = int(background_fraction * n_points)
    n_cluster_pts = n_points - n_background

    # Log-spaced class sizes: the real cover types are very imbalanced
    # (two classes hold ~85% of the data).
    weights = np.logspace(0.0, 1.6, n_cover_types)[::-1]
    counts = (n_cluster_pts * weights / weights.sum()).astype(int)
    counts[0] += n_cluster_pts - counts.sum()

    parts: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    clusters: list[ClusterShape] = []
    for label, count in enumerate(counts):
        center = rng.uniform(0.2, 0.8, size=n_dims)
        sigmas = rng.uniform(0.01, 0.05, size=n_dims)
        parts.append(rng.normal(center, sigmas, size=(int(count), n_dims)))
        labels.append(np.full(int(count), label, dtype=np.int64))
        clusters.append(Ellipsoid(center, 2.5 * sigmas))

    parts.append(rng.uniform(0.0, 1.0, size=(n_background, n_dims)))
    labels.append(np.full(n_background, NOISE_LABEL, dtype=np.int64))

    points = np.clip(np.vstack(parts), 0.0, 1.0)
    label_arr = np.concatenate(labels)
    order = rng.permutation(points.shape[0])
    return SyntheticDataset(
        points=points[order],
        labels=label_arr[order],
        clusters=clusters,
        noise_fraction=background_fraction,
    )
