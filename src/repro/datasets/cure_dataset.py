"""A regeneration of "dataset1" from the CURE study (Figure 3).

The original dataset (Guha et al., SIGMOD 1998) is not distributable,
but its published description pins down the structure: one *large*
circular cluster, two small circles close to each other, two elongated
ellipses lying side by side, and — crucially — a sparse **chain of
outliers connecting the two ellipses**. The chain is what defeats a
small uniform sample: enough chain points survive to bridge the
ellipses into one cluster, which (at the true k) forces a split
elsewhere, typically of the big cluster. A density-biased sample with
``a > 0`` suppresses the sparse chain and the background scatter, so
the five clusters separate cleanly — the paper's Figure 3(b) vs 3(c).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.shapes import Ball, ClusterShape, Ellipsoid
from repro.datasets.synthetic import NOISE_LABEL, SyntheticDataset
from repro.exceptions import ParameterError
from repro.utils.validation import check_random_state

__all__ = ["cure_dataset1"]


def cure_dataset1(
    n_points: int = 100_000,
    noise_fraction: float = 0.04,
    chain_fraction: float = 0.012,
    random_state=None,
) -> SyntheticDataset:
    """Generate the five-cluster CURE benchmark lookalike.

    Parameters
    ----------
    n_points:
        Total cluster points. The large circle holds over half of them;
        the ellipses about a sixth each; the two small circles the rest.
    noise_fraction:
        Uniform background scatter, as a fraction of ``n_points``.
    chain_fraction:
        Points forming the sparse chain between the two ellipses
        (labelled as noise: they belong to no cluster).
    random_state:
        Seed or generator for the draws.

    Examples
    --------
    >>> data = cure_dataset1(n_points=5000, random_state=0)
    >>> data.n_clusters
    5
    """
    if n_points < 100:
        raise ParameterError(f"n_points must be >= 100; got {n_points}.")
    rng = check_random_state(random_state)

    clusters: list[ClusterShape] = [
        Ball(center=(0.26, 0.32), radius=0.19),          # the big circle
        Ellipsoid(center=(0.50, 0.84), radii=(0.23, 0.05)),  # upper ellipse
        Ellipsoid(center=(0.50, 0.66), radii=(0.23, 0.05)),  # lower ellipse
        Ball(center=(0.80, 0.20), radius=0.07),          # small circle A
        Ball(center=(0.80, 0.42), radius=0.07),          # small circle B
    ]
    shares = np.array([0.54, 0.16, 0.16, 0.07, 0.07])
    counts = (shares * n_points).astype(int)
    counts[0] += n_points - counts.sum()

    parts = [
        shape.sample(int(count), rng)
        for shape, count in zip(clusters, counts)
    ]
    labels = [
        np.full(int(count), label, dtype=np.int64)
        for label, count in enumerate(counts)
    ]

    # The chain of outliers between the two ellipses: a vertical string
    # of sparse points crossing the gap, jittered slightly.
    n_chain = int(round(chain_fraction * n_points))
    if n_chain:
        xs = rng.uniform(0.30, 0.70, size=n_chain)
        ys = rng.uniform(0.70, 0.80, size=n_chain)
        chain = np.column_stack([xs, ys])
        parts.append(chain)
        labels.append(np.full(n_chain, NOISE_LABEL, dtype=np.int64))

    n_noise = int(round(noise_fraction * n_points))
    if n_noise:
        parts.append(rng.random((n_noise, 2)))
        labels.append(np.full(n_noise, NOISE_LABEL, dtype=np.int64))

    points = np.vstack(parts)
    label_arr = np.concatenate(labels)
    order = rng.permutation(points.shape[0])
    return SyntheticDataset(
        points=points[order],
        labels=label_arr[order],
        clusters=clusters,
        noise_fraction=noise_fraction + chain_fraction,
    )
