"""Datasets with planted DB(p, k) outliers for section 4.5.

Clusters provide the dense mass; outliers are planted far from every
cluster *and* from each other, so that with a radius ``k`` below the
planting separation each planted point is a genuine DB(p, k) outlier by
construction. The generator returns the guaranteed radius so tests and
benchmarks can pick valid (p, k) settings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic import SyntheticDataset, make_clustered_dataset
from repro.exceptions import ParameterError
from repro.utils.validation import check_random_state

__all__ = [
    "OutlierDataset",
    "make_outlier_dataset",
]


@dataclass
class OutlierDataset:
    """A clustered dataset plus ground-truth planted outliers.

    Attributes
    ----------
    points:
        All points; outliers occupy arbitrary (shuffled) positions.
    outlier_indices:
        Row indices of the planted outliers.
    guaranteed_radius:
        Any ``k <= guaranteed_radius`` makes every planted point a
        DB(p, k) outlier for every ``p >= 0``.
    base:
        The underlying clustered dataset (for density context).
    """

    points: np.ndarray
    outlier_indices: np.ndarray
    guaranteed_radius: float
    base: SyntheticDataset

    @property
    def n_points(self) -> int:
        return self.points.shape[0]


def make_outlier_dataset(
    n_points: int = 20_000,
    n_outliers: int = 20,
    n_clusters: int = 5,
    n_dims: int = 2,
    separation: float = 0.08,
    random_state=None,
) -> OutlierDataset:
    """Clusters plus ``n_outliers`` isolated points.

    Outlier positions are rejection-sampled to keep distance at least
    ``separation`` from every other point (cluster points and other
    outliers alike).

    >>> data = make_outlier_dataset(n_points=2000, n_outliers=5,
    ...                             random_state=0)
    >>> len(data.outlier_indices)
    5
    """
    if n_outliers < 0:
        raise ParameterError(f"n_outliers must be >= 0; got {n_outliers}.")
    rng = check_random_state(random_state)
    base = make_clustered_dataset(
        n_points=n_points,
        n_clusters=n_clusters,
        n_dims=n_dims,
        noise_fraction=0.0,
        cluster_volume_fraction=0.03,
        random_state=rng,
    )
    from scipy.spatial import cKDTree

    tree = cKDTree(base.points)
    outliers: list[np.ndarray] = []
    attempts = 0
    sep = separation
    while len(outliers) < n_outliers:
        candidate = rng.random(n_dims)
        d_data, _ = tree.query(candidate)
        d_out = (
            min(np.linalg.norm(candidate - o) for o in outliers)
            if outliers
            else np.inf
        )
        if d_data >= sep and d_out >= sep:
            outliers.append(candidate)
        attempts += 1
        if attempts > 50_000:
            raise ParameterError(
                "could not place outliers with the requested separation; "
                "lower `separation` or `n_outliers`."
            )
    outlier_pts = (
        np.array(outliers) if outliers else np.empty((0, n_dims))
    )
    points = np.vstack([base.points, outlier_pts])
    order = rng.permutation(points.shape[0])
    inverse = np.empty_like(order)
    inverse[order] = np.arange(order.shape[0])
    outlier_indices = np.sort(inverse[base.points.shape[0] :])
    return OutlierDataset(
        points=points[order],
        outlier_indices=outlier_indices,
        guaranteed_radius=sep * 0.999,
        base=base,
    )
