"""Future-work experiments: sampling for rules and classification.

The paper's conclusion proposes extending biased sampling to
association rules and decision-tree construction. These experiments
quantify the extension on the library's own implementations:

* ``ext-rules`` — Toivonen-style sampled Apriori: recall of the true
  frequent itemsets, certification rate, and full-data passes, for
  uniform vs length-biased transaction sampling across sample sizes.
* ``ext-tree`` — decision-tree accuracy when training on 100% of the
  data vs a uniform sample vs an inverse-probability-weighted biased
  sample of equal size.
"""

from __future__ import annotations

from repro.core import DensityBiasedSampler, UniformSampler
from repro.experiments._common import scaled
from repro.experiments.registry import experiment
from repro.experiments.reporting import ExperimentResult
from repro.mining import (
    DecisionTreeClassifier,
    apriori,
    make_classification_dataset,
    make_transaction_dataset,
    sampled_apriori,
)

__all__ = [
    "run_rules",
    "run_tree",
]


@experiment(
    "ext-rules",
    "sampled association-rule mining: recall, certificates, passes",
    "conclusion (future work) + citation [28] (Toivonen)",
)
def run_rules(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="ext-rules",
        description="frequent-itemset mining from samples with "
        "negative-border verification",
    )
    data = make_transaction_dataset(
        n_transactions=scaled(40_000, scale, minimum=4000),
        n_items=150,
        random_state=seed,
    )
    min_support = 0.06
    exact = set(apriori(data, min_support=min_support))
    table = result.new_table(
        "sample size sweep (min_support=6%)",
        [
            "sample_pct",
            "bias",
            "recall",
            "certified",
            "border_size",
            "full_passes",
        ],
    )
    for fraction in (0.02, 0.05, 0.1, 0.2):
        size = max(50, int(fraction * data.n_transactions))
        for bias in ("uniform", "length"):
            recalls, certs, borders = [], [], []
            for offset in range(3):
                run = sampled_apriori(
                    data,
                    min_support=min_support,
                    sample_size=size,
                    bias=bias,
                    random_state=seed + offset,
                )
                hit = len(set(run.frequent) & exact)
                recalls.append(hit / max(1, len(exact)))
                certs.append(run.certified)
                borders.append(run.border_size)
            table.add_row(
                fraction * 100,
                bias,
                round(sum(recalls) / 3, 3),
                f"{sum(certs)}/3",
                round(sum(borders) / 3),
                1,
            )
    result.notes.append(
        f"{len(exact)} itemsets are frequent in the full data; a "
        "certified run is provably complete after a single full-data "
        "pass (Toivonen's negative-border check)."
    )
    return result


@experiment(
    "ext-tree",
    "decision trees trained on weighted biased samples",
    "conclusion (future work): classification / decision trees",
)
def run_tree(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="ext-tree",
        description="test accuracy: full-data training vs uniform vs "
        "weighted biased samples",
    )
    n = scaled(60_000, scale, minimum=8000)
    points, labels = make_classification_dataset(
        n_points=n, n_classes=5, imbalance=8.0, random_state=seed
    )
    split = int(0.8 * n)
    train_x, train_y = points[:split], labels[:split]
    test_x, test_y = points[split:], labels[split:]

    full_tree = DecisionTreeClassifier(max_depth=8).fit(train_x, train_y)
    full_acc = full_tree.score(test_x, test_y)

    table = result.new_table(
        "test accuracy vs training-sample size",
        ["sample_pct", "full_data", "uniform", "biased_a0.5_weighted"],
    )
    for fraction in (0.01, 0.02, 0.05, 0.1):
        size = max(100, int(fraction * split))
        uniform_accs, biased_accs = [], []
        for offset in range(3):
            uniform = UniformSampler(
                size, random_state=seed + offset
            ).sample(train_x)
            tree_u = DecisionTreeClassifier(max_depth=8).fit(
                uniform.points, train_y[uniform.indices]
            )
            uniform_accs.append(tree_u.score(test_x, test_y))
            biased = DensityBiasedSampler(
                sample_size=size, exponent=0.5, random_state=seed + offset
            ).sample(train_x)
            tree_b = DecisionTreeClassifier(max_depth=8).fit(
                biased.points,
                train_y[biased.indices],
                sample_weight=biased.weights,
            )
            biased_accs.append(tree_b.score(test_x, test_y))
        table.add_row(
            fraction * 100,
            round(full_acc, 3),
            round(sum(uniform_accs) / 3, 3),
            round(sum(biased_accs) / 3, 3),
        )
    result.notes.append(
        "the weighted biased sample approximates full-data training "
        "while reading a small fraction of the data; weights are the "
        "section-3.1 inverse-probability correction."
    )
    return result
