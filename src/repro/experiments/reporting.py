"""Plain-text rendering of experiment results.

The paper's figures are line plots; the harness reports the same
series as aligned ASCII tables (x value per row, one column per curve)
so the shape — who wins, where the crossover is — is readable in a
terminal and diffable in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import RunManifest

__all__ = [
    "Table",
    "ExperimentResult",
]


@dataclass
class Table:
    """One table/series of an experiment."""

    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} values; table {self.title!r} "
                f"has {len(self.headers)} columns."
            )
        self.rows.append(list(values))

    def column(self, header: str) -> list:
        """All values of one column (for assertions in tests/benches)."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
            for i, h in enumerate(self.headers)
        ]
        lines = [f"## {self.title}"]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class ExperimentResult:
    """Everything one experiment produced.

    ``elapsed`` (wall seconds of the whole run, from the recorder's
    root span) and ``manifest`` (the :class:`repro.obs.RunManifest`
    with counters and phase tracing) are filled in by
    :func:`repro.experiments.run_experiment`.
    """

    name: str
    description: str
    tables: list[Table] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    elapsed: float | None = None
    manifest: RunManifest | None = None

    def new_table(self, title: str, headers: list[str]) -> Table:
        table = Table(title=title, headers=headers)
        self.tables.append(table)
        return table

    def table(self, title: str) -> Table:
        for table in self.tables:
            if table.title == title:
                return table
        raise KeyError(f"no table titled {title!r} in {self.name}.")

    def render(self) -> str:
        parts = [f"# {self.name}: {self.description}"]
        parts.extend(table.render() for table in self.tables)
        if self.notes:
            parts.append("Notes:")
            parts.extend(f"  - {note}" for note in self.notes)
        return "\n\n".join(parts)
