"""Execute registered experiments."""

from __future__ import annotations

import sys
from contextlib import nullcontext

from repro.density.backends import (
    resolve_density_backend,
    use_density_backend,
)
from repro.experiments.registry import get_experiment
from repro.experiments.reporting import ExperimentResult
from repro.faults import use_fault_policy
from repro.obs import (
    Recorder,
    RunManifest,
    Stopwatch,
    get_recorder,
    trace_memory,
    use_recorder,
)
from repro.parallel import use_n_jobs
from repro.sharding import use_shards

__all__ = [
    "run_experiment",
    "render_plots",
]


def run_experiment(
    name: str,
    scale: float = 1.0,
    seed: int = 0,
    verbose: bool = True,
    plot: bool = False,
    out=None,
    record: bool = True,
    metrics_out=None,
    n_jobs: int | None = None,
    shards: int | None = None,
    density_backend: str | None = None,
    fault_policy=None,
    profile: bool = False,
    memory: bool = False,
) -> ExperimentResult:
    """Run one experiment and (optionally) print its report.

    Parameters
    ----------
    name:
        Registry id (``fig4``, ``outliers``, ...).
    scale:
        Dataset-size multiplier relative to the paper's setup. ``1.0``
        is paper scale; the checked-in EXPERIMENTS.md numbers use the
        scale recorded there.
    seed:
        Base random seed; experiments derive all their generators from
        it, so a (name, scale, seed) triple is fully reproducible.
    verbose:
        Print the rendered report (and plots) to ``out``.
    plot:
        Additionally render each numeric sweep table as an ASCII line
        plot (the terminal version of the paper's figures).
    out:
        Writable stream for the report; defaults to ``sys.stdout``.
    record:
        Install a fresh :class:`repro.obs.Recorder` around the run and
        attach a :class:`repro.obs.RunManifest` (counters, timers, span
        tree) to the result. When false, any ambient recorder still
        observes the run and no manifest is built.
    metrics_out:
        Manifest sink (path, stream, or callable — see
        :meth:`repro.obs.RunManifest.emit`); implies nothing when
        ``record`` is false.
    n_jobs:
        Worker count installed as the ambient default for the run
        (see :mod:`repro.parallel`); ``None`` leaves the ambient
        default / ``REPRO_N_JOBS`` resolution in place. Counters and
        results are identical for any value.
    shards:
        Shard count installed as the ambient default for the run (see
        :mod:`repro.sharding`); ``None`` leaves the ambient default /
        ``REPRO_SHARDS`` resolution in place. Fit/eval/gather passes
        then fan out as ``shards`` row-range shards; results are
        byte-identical for any value (only the ``shard*`` bookkeeping
        counters differ from a serial run).
    density_backend:
        Density-estimator family installed as the ambient default for
        the run (``"kde"``, ``"tree"``; see
        :mod:`repro.density.backends`); ``None`` leaves the ambient
        default / ``REPRO_DENSITY_BACKEND`` resolution in place.
        Every default-built estimator in the run uses this family.
    fault_policy:
        Invalid-row handling installed as the ambient policy for the
        run: a mode name (``"strict"``, ``"quarantine"``,
        ``"repair"``), a :class:`repro.faults.RowQuarantine`, or
        ``None`` to leave the ambient policy in place (default
        strict). Quarantine/repair counters land in the run manifest.
    profile:
        Run every recorder span under a scoped profiler (see
        :mod:`repro.obs.profiler`); per-function tables attach to the
        owning spans and an aggregated table lands in the manifest.
        Only meaningful with ``record``.
    memory:
        Enable :mod:`tracemalloc` for the run, so every span closes
        with a ``bytes_alloc`` attribute. Only meaningful with
        ``record``.
    """
    spec = get_experiment(name)
    stream = out if out is not None else sys.stdout
    if record:
        recorder = Recorder(profile=profile)
        context = use_recorder(recorder)
    else:
        recorder = get_recorder()
        context = nullcontext()
    jobs_context = use_n_jobs(n_jobs) if n_jobs is not None else nullcontext()
    shards_context = (
        use_shards(shards) if shards is not None else nullcontext()
    )
    backend_context = (
        use_density_backend(density_backend)
        if density_backend is not None
        else nullcontext()
    )
    policy_context = (
        use_fault_policy(fault_policy)
        if fault_policy is not None
        else nullcontext()
    )
    memory_context = trace_memory() if (record and memory) else nullcontext()
    with context, jobs_context, shards_context, backend_context, (
        policy_context
    ), memory_context, Stopwatch() as watch:
        with recorder.phase(f"run:{name}"):
            result = spec.run(scale=scale, seed=seed)
    if record:
        result.elapsed = recorder.spans[-1].elapsed
        params = {"scale": scale, "seed": seed}
        if shards is not None:
            params["shards"] = int(shards)
        if density_backend is not None:
            params["density_backend"] = resolve_density_backend(
                density_backend
            )
        if fault_policy is not None:
            params["fault_policy"] = str(
                getattr(fault_policy, "mode", fault_policy)
            )
        result.manifest = RunManifest.from_recorder(
            recorder,
            name=name,
            seed=seed,
            params=params,
        )
        if metrics_out is not None:
            result.manifest.emit(metrics_out)
    else:
        result.elapsed = watch.elapsed
    result.notes.append(
        f"run settings: scale={scale}, seed={seed}, "
        f"wall time {result.elapsed:.1f}s"
    )
    if verbose:
        print(result.render(), file=stream)
        if plot:
            for chart in render_plots(result):
                print(chart, file=stream)
    return result


def render_plots(result: ExperimentResult) -> list[str]:
    """ASCII line plots for every table with a numeric sweep axis."""
    from repro.utils.ascii_plot import line_plot

    charts = []
    for table in result.tables:
        if len(table.rows) < 2:
            continue
        xs = table.column(table.headers[0])
        if not all(_plottable(x) for x in xs):
            continue
        series = {}
        for header in table.headers[1:]:
            values = table.column(header)
            if all(_plottable(v) for v in values):
                series[header] = values
        if not series or len(series) > 7:
            continue
        chart = line_plot(xs, series)
        charts.append(
            f"[plot] {table.title} (x = {table.headers[0]})\n{chart}"
        )
    return charts


def _plottable(value) -> bool:
    """Numeric and not a bool (booleans are verdicts, not series)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)
