"""Figure 6: the 3-D noise sweep at a = 0.5.

Same workload as Figure 4(c) (100k points, 10 clusters, 3 dimensions,
2% samples) but with the milder dense-region exponent ``a = 0.5`` —
the paper reports results "similar" to ``a = 1``, showing the method is
not sensitive to the exact positive exponent.
"""

from __future__ import annotations

from repro.datasets import make_fig4_dataset
from repro.experiments._common import (
    run_biased,
    run_birch,
    run_uniform,
    scaled,
)
from repro.experiments.fig4 import NOISE_LEVELS
from repro.experiments.registry import experiment
from repro.experiments.reporting import ExperimentResult

__all__ = ["run"]

_PAPER_N = 100_000


@experiment(
    "fig6",
    "3-D noise sweep with the milder exponent a=0.5",
    "Figure 6",
)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="fig6",
        description="clusters found (of 10) in 3-D, sample 2%, a=0.5",
    )
    n_points = scaled(_PAPER_N, scale, minimum=5000)
    table = result.new_table(
        "3 dims, sample 2%, a=0.5",
        ["noise_pct", "biased_a0.5", "uniform_cure", "birch"],
    )
    for noise in NOISE_LEVELS:
        dataset = make_fig4_dataset(
            n_dims=3,
            noise_fraction=noise,
            n_points=n_points,
            random_state=seed,
        )
        budget = max(50, int(0.02 * dataset.n_points))
        table.add_row(
            int(noise * 100),
            run_biased(dataset, budget, exponent=0.5, n_clusters=10,
                       seed=seed, n_seeds=3),
            run_uniform(dataset, budget, n_clusters=10, seed=seed,
                        n_seeds=3),
            run_birch(dataset, budget, n_clusters=10),
        )
    result.notes.append(
        "paper: the a=0.5 results match the a=1 sweep of Figure 4(c) — "
        "biased sampling stays near 10 found clusters under heavy noise."
    )
    return result
