"""Lemma 1: relative densities are preserved for exponents a > -1.

The lemma underpins the negative-exponent regime: with ``-1 < a < 0``
sparse regions are oversampled *but* denser regions remain denser in
the sample, so large clusters are not lost while small ones are
amplified. This experiment samples the variable-density workload across
a grid of exponents and measures the fraction of cluster pairs whose
density order survives in the sample — high for ``a > -1``, degrading
at and below ``-1``.
"""

from __future__ import annotations

from itertools import combinations

from repro.datasets import make_fig5_dataset
from repro.evaluation import density_order_preservation
from repro.experiments._common import biased_sample, scaled
from repro.experiments.registry import experiment
from repro.experiments.reporting import ExperimentResult

__all__ = [
    "EXPONENTS",
    "run",
]

EXPONENTS = (1.0, 0.5, 0.0, -0.25, -0.5, -0.75, -1.0, -1.5, -2.0)


@experiment(
    "lemma1",
    "relative-density preservation across the exponent grid",
    "Lemma 1",
)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="lemma1",
        description="fraction of cluster pairs keeping their density "
        "order in the sample, per exponent",
    )
    dataset = make_fig5_dataset(
        n_dims=2,
        noise_fraction=0.0,
        n_points=scaled(100_000, scale, minimum=10_000),
        random_state=seed,
    )
    pairs = list(combinations(dataset.clusters, 2))
    sample_size = max(500, int(0.02 * dataset.n_points))

    table = result.new_table(
        "density-order preservation vs exponent",
        ["exponent", "preserved_pair_fraction", "lemma1_applies"],
    )
    for a in EXPONENTS:
        sample = biased_sample(dataset, sample_size, exponent=a, seed=seed)
        preserved = density_order_preservation(
            dataset.points, sample.points, pairs
        )
        table.add_row(a, preserved, a > -1.0)
    result.notes.append(
        "Lemma 1 guarantees preservation w.h.p. only for a > -1; at "
        "a = -1 every region gets equal expected sample mass per volume "
        "and order becomes a coin flip, below -1 it inverts."
    )
    return result
