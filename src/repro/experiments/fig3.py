"""Figure 3: the CURE dataset1 case study.

A 1000-point *biased* sample (a = 0.5) of the five-cluster CURE dataset
lets the hierarchical algorithm recover all five clusters; a uniform
sample of the same size splits the large cluster and merges neighbouring
ones. Increasing the uniform sample size eventually fixes it — the paper
observes "well above 2000 points", i.e. about twice the biased size —
which this experiment reproduces with a sample-size sweep.
"""

from __future__ import annotations

from repro.clustering import CureClustering
from repro.core import DensityBiasedSampler, UniformSampler
from repro.datasets import cure_dataset1
from repro.evaluation import count_found_clusters
from repro.experiments._common import scaled
from repro.experiments.registry import experiment
from repro.experiments.reporting import ExperimentResult

__all__ = ["run"]

_PAPER_N = 100_000
_SAMPLE = 1000


@experiment(
    "fig3",
    "five-cluster CURE dataset: biased vs uniform 1000-point samples",
    "Figure 3",
)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="fig3",
        description="clusters found (of 5) on CURE dataset1 lookalike",
    )
    dataset = cure_dataset1(
        n_points=scaled(_PAPER_N, scale, minimum=2000), random_state=seed
    )
    b = scaled(_SAMPLE, min(1.0, max(scale, 0.25)), minimum=200)

    head = result.new_table(
        "found clusters at equal sample size",
        ["method", "sample_size", "found_of_5"],
    )
    head.add_row("biased a=0.5", b, _found_biased(dataset, b, seed))
    head.add_row("uniform", b, _found_uniform(dataset, b, seed))

    sweep = result.new_table(
        "uniform sample size needed to catch up",
        ["uniform_sample_size", "found_of_5"],
    )
    for factor in (1.0, 1.5, 2.0, 3.0):
        size = int(b * factor)
        sweep.add_row(size, _found_uniform(dataset, size, seed))
    result.notes.append(
        "paper: the uniform sample splits the large cluster and merges "
        "close pairs; roughly twice the biased sample size is needed for "
        "uniform sampling to find all five clusters."
    )
    return result


def _found(dataset, sample_points) -> int:
    # Exactly five clusters, as in the paper: this experiment is about
    # the split/merge mistakes uniform sampling makes at the true k.
    clustering = CureClustering(n_clusters=5).fit(sample_points)
    return count_found_clusters(clustering, dataset.clusters)


def _found_biased(dataset, size, seed, n_seeds=3) -> float:
    found = []
    for offset in range(n_seeds):
        sample = DensityBiasedSampler(
            sample_size=size, exponent=0.5, random_state=seed + offset
        ).sample(dataset.points)
        found.append(_found(dataset, sample.points))
    return round(sum(found) / n_seeds, 2)


def _found_uniform(dataset, size, seed, n_seeds=3) -> float:
    found = []
    for offset in range(n_seeds):
        sample = UniformSampler(size, random_state=seed + offset).sample(
            dataset.points
        )
        found.append(_found(dataset, sample.points))
    return round(sum(found) / n_seeds, 2)
