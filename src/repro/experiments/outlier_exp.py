"""Section 4.5: distance-based outlier detection experiments.

The paper reports that the approximate detector "finds all the outliers
with at most two dataset passes plus the dataset pass that is required
to compute the density estimator". This experiment plants ground-truth
DB(p, k) outliers, runs the density-screened detector, and verifies
recall/precision, pass counts, and the one-pass outlier-count estimate
against exact (kd-tree) detection — on synthetic workloads and the
geospatial stand-in.
"""

from __future__ import annotations

from repro.datasets import make_outlier_dataset, northeast_dataset
from repro.evaluation import outlier_precision_recall
from repro.experiments._common import scaled
from repro.experiments.registry import experiment
from repro.experiments.reporting import ExperimentResult
from repro.outliers import ApproximateOutlierDetector, IndexedOutlierDetector

__all__ = ["run"]


@experiment(
    "outliers",
    "approximate DB(p,k) detection: recall, precision and pass counts",
    "Section 4.5",
)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="outliers",
        description="density-screened DB(p,k) outlier detection vs exact",
    )
    table = result.new_table(
        "planted-outlier workloads",
        [
            "workload",
            "n_points",
            "outliers",
            "precision",
            "recall",
            "passes",
            "candidates",
            "count_estimate",
        ],
    )
    for name, n_points, n_dims, n_outliers in (
        ("2d_small", scaled(10_000, scale, 2000), 2, 15),
        ("2d_large", scaled(50_000, scale, 5000), 2, 30),
        ("3d", scaled(20_000, scale, 3000), 3, 20),
    ):
        data = make_outlier_dataset(
            n_points=n_points,
            n_outliers=n_outliers,
            n_dims=n_dims,
            random_state=seed,
        )
        detector = ApproximateOutlierDetector(
            k=data.guaranteed_radius, p=0, random_state=seed
        )
        found = detector.detect(data.points)
        estimate = ApproximateOutlierDetector(
            k=data.guaranteed_radius, p=0, random_state=seed
        ).estimate_outlier_count(data.points)
        precision, recall = outlier_precision_recall(
            found.indices, data.outlier_indices
        )
        table.add_row(
            name,
            data.n_points,
            n_outliers,
            precision,
            recall,
            found.n_passes,
            found.n_candidates,
            estimate,
        )

    geo = result.new_table(
        "geospatial stand-in (NorthEast), agreement with exact detection",
        ["k", "p", "exact_outliers", "approx_outliers", "precision", "recall"],
    )
    ne = northeast_dataset(
        n_points=scaled(130_000, min(scale, 0.3), 5000), random_state=seed
    )
    for k, p in ((0.02, 1), (0.03, 2)):
        exact = IndexedOutlierDetector(k=k, p=p).detect(ne.points)
        approx = ApproximateOutlierDetector(
            k=k, p=p, random_state=seed
        ).detect(ne.points)
        precision, recall = outlier_precision_recall(
            approx.indices, exact.indices
        )
        geo.add_row(k, p, len(exact), len(approx), precision, recall)
    result.notes.append(
        "paper's claim: all outliers found with <= 2 passes beyond the "
        "density fit (the passes column counts fit + screen + verify)."
    )
    return result
