"""Ablation experiments for the design choices DESIGN.md calls out.

* ``ablation-estimator`` — the paper argues kernel estimators are the
  best density back-end but the framework is estimator-agnostic
  (section 2.2). Swap the KDE for the exact grid histogram and the k-NN
  estimator and measure cluster recovery and sampling time.
* ``ablation-onepass`` — the integrated single-pass sampler trades the
  exact normaliser for one fewer pass; measure the achieved-size error
  and whether sample quality survives.
* ``ablation-kernels`` — the paper fixes the Epanechnikov kernel;
  sweep the kernel family at fixed budget and confirm the choice is a
  constant-factor concern, not a correctness one.
"""

from __future__ import annotations

from repro.core import DensityBiasedSampler, OnePassBiasedSampler
from repro.datasets import make_fig5_dataset
from repro.density import (
    GridDensityEstimator,
    KernelDensityEstimator,
    KnnDensityEstimator,
)
from repro.experiments._common import cure_found, scaled
from repro.experiments.registry import experiment
from repro.experiments.reporting import ExperimentResult
from repro.obs import Stopwatch

__all__ = [
    "run_estimators",
    "run_onepass",
    "run_kernels",
]


@experiment(
    "ablation-estimator",
    "KDE vs grid histogram vs k-NN density back-ends",
    "design choice (section 2.2: estimators are pluggable)",
)
def run_estimators(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="ablation-estimator",
        description="same biased-sampling task, three density back-ends",
    )
    dataset = make_fig5_dataset(
        n_dims=2,
        noise_fraction=0.1,
        n_points=scaled(100_000, scale, minimum=10_000),
        random_state=seed,
    )
    sample_size = max(300, int(0.01 * dataset.n_points))
    table = result.new_table(
        "estimator back-ends (a=-0.5, 1% sample)",
        ["estimator", "found_of_10", "sampling_seconds", "sample_size"],
    )
    backends = (
        ("kde_1000", KernelDensityEstimator(n_kernels=1000, random_state=seed)),
        ("grid_32", GridDensityEstimator(bins_per_dim=32)),
        ("knn_k10", KnnDensityEstimator(n_sample=1000, k=10, random_state=seed)),
    )
    for name, estimator in backends:
        with Stopwatch() as watch:
            sample = DensityBiasedSampler(
                sample_size=sample_size,
                exponent=-0.5,
                estimator=estimator,
                random_state=seed,
            ).sample(dataset.points)
        found = cure_found(dataset, sample.points, n_clusters=10)
        table.add_row(name, found, watch.elapsed, len(sample))
    result.notes.append(
        "the framework is estimator-agnostic; the paper prefers kernels "
        "for accuracy at a fixed summary size."
    )
    return result


@experiment(
    "ablation-onepass",
    "exact two-pass sampler vs integrated one-pass variant",
    "section 2.2 closing remark",
)
def run_onepass(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="ablation-onepass",
        description="pass count vs normaliser accuracy trade-off",
    )
    dataset = make_fig5_dataset(
        n_dims=2,
        noise_fraction=0.1,
        n_points=scaled(100_000, scale, minimum=10_000),
        random_state=seed,
    )
    target = max(300, int(0.01 * dataset.n_points))
    table = result.new_table(
        "two-pass vs one-pass (a=-0.5)",
        [
            "sampler",
            "target_size",
            "achieved_size",
            "size_error_pct",
            "found_of_10",
        ],
    )
    for name, sampler in (
        (
            "two-pass (exact k)",
            DensityBiasedSampler(
                sample_size=target, exponent=-0.5, random_state=seed
            ),
        ),
        (
            "one-pass (estimated k)",
            OnePassBiasedSampler(
                sample_size=target, exponent=-0.5, random_state=seed
            ),
        ),
    ):
        sample = sampler.sample(dataset.points)
        error = abs(len(sample) - target) / target * 100
        table.add_row(
            name,
            target,
            len(sample),
            error,
            cure_found(dataset, sample.points, n_clusters=10),
        )
    result.notes.append(
        "the one-pass variant only approximates the sampling probability "
        "(its normaliser comes from the kernel centers), so its achieved "
        "size drifts from the target while cluster recovery holds."
    )
    return result


@experiment(
    "ablation-kernels",
    "kernel family sweep at a fixed 1000-kernel budget",
    "design choice (section 2.2: Epanechnikov kernel)",
)
def run_kernels(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="ablation-kernels",
        description="same sampling task across kernel profiles",
    )
    dataset = make_fig5_dataset(
        n_dims=2,
        noise_fraction=0.1,
        n_points=scaled(100_000, scale, minimum=10_000),
        random_state=seed,
    )
    sample_size = max(300, int(0.01 * dataset.n_points))
    table = result.new_table(
        "kernel profiles (a=-0.25, 1% sample, 1000 kernels)",
        ["kernel", "found_of_10", "sampling_seconds"],
    )
    for kernel in ("epanechnikov", "gaussian", "uniform", "triangular",
                   "biweight"):
        found = []
        with Stopwatch() as watch:
            for offset in range(2):
                estimator = KernelDensityEstimator(
                    n_kernels=1000, kernel=kernel, random_state=seed + offset
                )
                sample = DensityBiasedSampler(
                    sample_size=sample_size,
                    exponent=-0.25,
                    estimator=estimator,
                    random_state=seed + offset,
                ).sample(dataset.points)
                found.append(
                    cure_found(dataset, sample.points, n_clusters=10)
                )
        elapsed = watch.elapsed / 2
        table.add_row(kernel, round(sum(found) / 2, 2), elapsed)
    result.notes.append(
        "all profiles support the sampler; compact-support kernels "
        "(the paper's Epanechnikov) evaluate fastest, the Gaussian "
        "never assigns exactly-zero density."
    )
    return result
