"""Section 4.3 "Running time experiments": linear scaling checks.

"Not surprisingly, our algorithm scales linearly to the number of
kernels and the size of the datasets." This experiment times the full
sampling pipeline while doubling each factor and reports the ratios
(a doubling should roughly double the time).
"""

from __future__ import annotations

from repro.core import DensityBiasedSampler
from repro.datasets import make_clustered_dataset
from repro.density import KernelDensityEstimator
from repro.experiments._common import scaled
from repro.experiments.registry import experiment
from repro.experiments.reporting import ExperimentResult
from repro.obs import Stopwatch

__all__ = ["run"]


def _sampling_time(points, n_kernels: int, seed: int) -> float:
    with Stopwatch() as watch:
        estimator = KernelDensityEstimator(
            n_kernels=n_kernels, random_state=seed
        )
        DensityBiasedSampler(
            sample_size=500, exponent=1.0, estimator=estimator,
            random_state=seed,
        ).sample(points)
    return watch.elapsed


@experiment(
    "scaling",
    "sampler runtime is linear in dataset size and kernel count",
    "Section 4.3, running time experiments",
)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="scaling",
        description="sampling pipeline wall time while doubling one factor",
    )
    base_n = scaled(200_000, scale, minimum=20_000)

    by_size = result.new_table(
        "varying dataset size (1000 kernels)",
        ["n_points", "seconds", "ratio_to_prev"],
    )
    previous = None
    for factor in (1, 2, 4):
        data = make_clustered_dataset(
            n_points=base_n * factor, n_clusters=10, random_state=seed
        )
        elapsed = _sampling_time(data.points, 1000, seed)
        by_size.add_row(
            base_n * factor,
            elapsed,
            elapsed / previous if previous else 1.0,
        )
        previous = elapsed

    by_kernels = result.new_table(
        "varying kernel count (fixed dataset)",
        ["n_kernels", "seconds", "ratio_to_prev"],
    )
    data = make_clustered_dataset(
        n_points=base_n, n_clusters=10, random_state=seed
    )
    previous = None
    for n_kernels in (250, 500, 1000, 2000):
        elapsed = _sampling_time(data.points, n_kernels, seed)
        by_kernels.add_row(
            n_kernels,
            elapsed,
            elapsed / previous if previous else 1.0,
        )
        previous = elapsed
    result.notes.append(
        "linear scaling shows as ratio_to_prev ~= the factor applied "
        "(2x rows should sit near 2; constant overheads pull small runs "
        "below it)."
    )
    return result
