"""Theorem 1 and the Guha bound: analysis plus Monte-Carlo validation.

Reproduces the paper's section-2 analysis: the uniform sample size
needed to capture a cluster fraction with confidence (including the
motivating "25% of the dataset" example), the biased (rule R) sample
size as the cluster share ``p`` varies, and a simulation confirming both
the guarantee and the crossover at ``p = |u| / n``.
"""

from __future__ import annotations

from repro.core import theory
from repro.experiments.registry import experiment
from repro.experiments.reporting import ExperimentResult
from repro.utils.validation import check_random_state

__all__ = ["run"]

_N = 100_000
_CLUSTER = 1000
_ETA = 0.2
_DELTA = 0.1


@experiment(
    "theorem1",
    "uniform vs biased (rule R) sample-size bounds and their crossover",
    "Section 2 analysis / Theorem 1",
)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="theorem1",
        description="sample sizes guaranteeing a cluster fraction is "
        "captured (n=100k, |u|=1000, eta=0.2, delta=0.1)",
    )
    s_uniform = theory.uniform_sample_size(_N, _CLUSTER, _ETA, _DELTA)
    example = result.new_table(
        "the paper's motivating example",
        ["quantity", "value"],
    )
    example.add_row("uniform sample size s", round(s_uniform))
    example.add_row("as fraction of dataset", s_uniform / _N)
    example.add_row(
        "paper's statement", "'we need to sample 25% of the dataset'"
    )

    crossover = result.new_table(
        "biased sample size under rule R",
        ["p", "s_R", "s_R_over_s", "beats_uniform", "theorem1_predicts"],
    )
    for p in (0.001, 0.005, _CLUSTER / _N, 0.05, 0.2, 0.5, 1.0):
        s_r = theory.biased_sample_size(_N, _CLUSTER, _ETA, _DELTA, p)
        crossover.add_row(
            p,
            round(s_r),
            s_r / s_uniform,
            s_r <= s_uniform,
            theory.theorem1_holds(_N, _CLUSTER, p),
        )

    mc = result.new_table(
        "Monte-Carlo check of the guarantee",
        ["scheme", "inclusion_prob", "empirical_success", "target"],
    )
    rng = check_random_state(seed)
    n_trials = max(200, int(2000 * scale))
    q_star = theory.required_inclusion_probability(_N, _CLUSTER, _ETA, _DELTA)
    for scheme, q in (("uniform at bound", q_star), ("rule R cluster rate", q_star)):
        draws = rng.binomial(_CLUSTER, q, size=n_trials)
        success = float((draws > _ETA * _CLUSTER).mean())
        mc.add_row(scheme, q, success, f">= {1 - _DELTA}")
    result.notes.append(
        "both schemes give cluster points the same inclusion probability, "
        "so the guarantee is identical; rule R simply spends fewer samples "
        "outside the cluster whenever p >= |u|/n (the crossover row)."
    )
    return result
