"""Figure 5: variable-density clusters, oversampling sparse regions.

100k points in 10 clusters whose densities differ by a factor of 10;
small sparse clusters get too few points in a uniform sample and are
dismissed. Biased sampling with ``-0.5 <= a <= -0.25`` inflates them in
the sample while Lemma 1 keeps the dense clusters dense. The sweep is
over the sample size (0.5%-5%); panel (c) runs in 5 dimensions and adds
the Palmer-Faloutsos grid sampler (e = -0.5) with its 5 MB hash table.
"""

from __future__ import annotations

from repro.datasets import make_fig5_dataset
from repro.experiments._common import (
    run_biased,
    run_birch,
    run_grid,
    run_uniform,
    scaled,
)
from repro.experiments.registry import experiment
from repro.experiments.reporting import ExperimentResult

__all__ = [
    "SAMPLE_FRACTIONS",
    "run",
]

_PAPER_N = 100_000
SAMPLE_FRACTIONS = (0.005, 0.01, 0.02, 0.03, 0.05)


@experiment(
    "fig5",
    "finding variable-density clusters vs sample size",
    "Figure 5(a)(b)(c)",
)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="fig5",
        description="clusters found (of 10) when cluster densities vary "
        "10x, as the sample grows",
    )
    n_points = scaled(_PAPER_N, scale, minimum=5000)

    for title, n_dims, noise in (
        ("2 dims, 10% noise", 2, 0.1),
        ("2 dims, 20% noise", 2, 0.2),
    ):
        dataset = make_fig5_dataset(
            n_dims=n_dims,
            noise_fraction=noise,
            n_points=n_points,
            random_state=seed,
        )
        table = result.new_table(
            title,
            [
                "sample_pct",
                "biased_a-0.5",
                "biased_a-0.25",
                "uniform_cure",
                "birch",
            ],
        )
        for fraction in SAMPLE_FRACTIONS:
            budget = max(50, int(fraction * dataset.n_points))
            table.add_row(
                fraction * 100,
                run_biased(dataset, budget, exponent=-0.5, n_clusters=10,
                           seed=seed, n_seeds=3),
                run_biased(dataset, budget, exponent=-0.25, n_clusters=10,
                           seed=seed, n_seeds=3),
                run_uniform(dataset, budget, n_clusters=10, seed=seed,
                            n_seeds=3),
                run_birch(dataset, budget, n_clusters=10),
            )

    dataset5 = make_fig5_dataset(
        n_dims=5, noise_fraction=0.1, n_points=n_points, random_state=seed
    )
    table5 = result.new_table(
        "5 dims, 10% noise (with grid-based baseline)",
        ["sample_pct", "biased_a-0.5", "uniform_cure", "grid_e-0.5"],
    )
    for fraction in SAMPLE_FRACTIONS:
        budget = max(50, int(fraction * dataset5.n_points))
        table5.add_row(
            fraction * 100,
            run_biased(dataset5, budget, exponent=-0.5, n_clusters=10,
                       seed=seed, n_seeds=3),
            run_uniform(dataset5, budget, n_clusters=10, seed=seed,
                        n_seeds=3),
            run_grid(dataset5, budget, exponent=-0.5, n_clusters=10,
                     seed=seed, n_seeds=3),
        )
    result.notes.append(
        "paper's shape: a=-0.5 dominates at 10% noise, a=-0.25 at 20% "
        "(less noise amplification); in 5-D the grid baseline beats "
        "uniform but trails kernel-based biased sampling."
    )
    return result
