"""Figure 7: sensitivity to the number of kernels.

Two 100k-point datasets: DS1 (10 equal clusters + 50% noise, sampled at
``a = 1``) and DS2 (10 clusters of very different sizes + 20% noise,
sampled at ``a = -0.25``), both with 500 sample points. Sweeping the
kernel count from 100 to 1200 shows quality improving steeply at first
and flattening near ~1000 kernels — the basis of the practitioner's
recommendation. DS2 needs the accuracy more because its cluster
densities vary widely.
"""

from __future__ import annotations

from repro.datasets import ds1_dataset, ds2_dataset
from repro.experiments._common import run_biased, scaled
from repro.experiments.registry import experiment
from repro.experiments.reporting import ExperimentResult

__all__ = [
    "KERNEL_SWEEP",
    "run",
]

_PAPER_N = 100_000
KERNEL_SWEEP = (100, 200, 400, 600, 800, 1000, 1200)
_SAMPLE = 500


@experiment(
    "fig7",
    "found clusters vs number of kernels (DS1 a=1, DS2 a=-0.25)",
    "Figure 7",
)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="fig7",
        description="clusters found (of 10) with 500 sample points as the "
        "kernel count grows",
    )
    n_points = scaled(_PAPER_N, scale, minimum=5000)
    ds1 = ds1_dataset(n_points=n_points, random_state=seed)
    ds2 = ds2_dataset(n_points=n_points, random_state=seed)
    sample = scaled(_SAMPLE, min(1.0, max(scale, 0.5)), minimum=250)

    table = result.new_table(
        "found clusters vs kernels",
        ["n_kernels", "ds1_50pct_noise_a1", "ds2_20pct_noise_a-0.25"],
    )
    for n_kernels in KERNEL_SWEEP:
        table.add_row(
            n_kernels,
            run_biased(ds1, sample, exponent=1.0, n_clusters=10, seed=seed,
                       n_kernels=n_kernels, n_seeds=3),
            run_biased(ds2, sample, exponent=-0.25, n_clusters=10,
                       seed=seed, n_kernels=n_kernels, n_seeds=3),
        )
    result.notes.append(
        "paper's shape: steep improvement from 100 to a few hundred "
        "kernels, then diminishing returns; 1000 kernels is the "
        "recommended operating point."
    )
    return result
