"""Experiment harness: one registered experiment per paper artifact.

``python -m repro list`` shows the registry; ``python -m repro run
<id>`` executes one experiment and prints its tables. Every experiment
accepts a ``scale`` (dataset-size multiplier relative to the paper's
setup) and a ``seed``; EXPERIMENTS.md records the settings used for the
checked-in results.
"""

from repro.experiments.registry import EXPERIMENTS, experiment, get_experiment
from repro.experiments.reporting import ExperimentResult, Table
from repro.experiments.runner import run_experiment

# Importing the modules below populates the registry.
from repro.experiments import (  # noqa: F401  (registration side effects)
    ablations,
    extensions,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    geo,
    lemma1,
    outlier_exp,
    samplesize,
    scaling,
    theorem1,
)

__all__ = [
    "EXPERIMENTS",
    "experiment",
    "get_experiment",
    "run_experiment",
    "ExperimentResult",
    "Table",
]
