"""Section 4.3 "Varying The Sample Size": quality saturation.

Both samplers stop improving beyond a certain sample size, but biased
sampling saturates much earlier — the paper observes ~1000 points for
density-biased vs ~2000 for uniform on its 100k-point workloads, in
line with the Theorem 1 analysis. The sweep runs on the Figure 5
workload (small sparse clusters), where small samples genuinely
struggle, and reports where each method first reaches its plateau.
"""

from __future__ import annotations

from repro.datasets import make_fig5_dataset
from repro.experiments._common import run_biased, run_uniform, scaled
from repro.experiments.registry import experiment
from repro.experiments.reporting import ExperimentResult

__all__ = ["run"]

_SIZES = (250, 500, 750, 1000, 1500, 2000, 3000)


@experiment(
    "samplesize",
    "quality saturation point: biased ~1k vs uniform ~2k samples",
    "Section 4.3, Varying The Sample Size",
)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="samplesize",
        description="clusters found (of 10) vs absolute sample size, "
        "variable-density workload with 10% noise",
    )
    dataset = make_fig5_dataset(
        n_dims=2,
        noise_fraction=0.1,
        n_points=scaled(100_000, scale, minimum=10_000),
        random_state=seed,
    )
    table = result.new_table(
        "found clusters vs sample size",
        ["sample_size", "biased_a-0.25", "uniform_cure"],
    )
    found_b: list[int] = []
    found_u: list[int] = []
    for size in _SIZES:
        size = min(size, dataset.n_points // 4)
        b = run_biased(dataset, size, exponent=-0.25, n_clusters=10,
                       seed=seed, n_seeds=3)
        u = run_uniform(dataset, size, n_clusters=10, seed=seed, n_seeds=3)
        table.add_row(size, b, u)
        found_b.append(b)
        found_u.append(u)

    saturation = result.new_table(
        "first size reaching the method's plateau",
        ["method", "saturation_sample_size"],
    )
    saturation.add_row("biased a=-0.25", _saturation_point(_SIZES, found_b))
    saturation.add_row("uniform", _saturation_point(_SIZES, found_u))
    result.notes.append(
        "paper: ~1k points saturate density-biased sampling, ~2k uniform."
    )
    return result


def _saturation_point(sizes, found) -> int:
    """Smallest size achieving the sweep's best quality."""
    best = max(found)
    for size, value in zip(sizes, found):
        if value == best:
            return size
    return sizes[-1]
