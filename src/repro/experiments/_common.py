"""Shared building blocks for the experiment modules.

Every clustering experiment follows the paper's pipeline: draw a sample
(biased / uniform / grid-based), run the CURE-style hierarchical
algorithm on it, and count found clusters with the 90%-representative
criterion; BIRCH instead summarises the full dataset with a CF-entry
budget equal to the sample size and is scored by its center-in-cluster
criterion.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import GridBiasedSampler
from repro.clustering import Birch, CureClustering
from repro.core import DensityBiasedSampler, UniformSampler
from repro.datasets.synthetic import SyntheticDataset
from repro.density import make_density_estimator
from repro.evaluation import birch_found_clusters, count_found_clusters

__all__ = [
    "scaled",
    "biased_sample",
    "EXTRA_CLUSTERS",
    "cure_found",
    "run_biased",
    "run_uniform",
    "run_birch",
    "run_grid",
]


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    """Scale a paper-sized quantity, keeping it usable at small scales."""
    return max(minimum, int(round(value * scale)))


def biased_sample(
    dataset: SyntheticDataset,
    sample_size: int,
    exponent: float,
    n_kernels: int = 1000,
    seed: int = 0,
):
    """The paper's sampler with its recommended estimator settings.

    The estimator comes from the backend registry, so one ambient
    ``--density-backend`` choice reaches every figure built on this
    helper; the default resolution constructs exactly the paper's
    KDE configuration.
    """
    estimator = make_density_estimator(
        budget=min(n_kernels, dataset.n_points), random_state=seed
    )
    sampler = DensityBiasedSampler(
        sample_size=sample_size,
        exponent=exponent,
        estimator=estimator,
        random_state=seed,
    )
    return sampler.sample(dataset.points)


EXTRA_CLUSTERS = 5
"""Over-clustering margin: the hierarchical algorithm is asked for this
many clusters beyond the true count so residual noise in the sample
forms its own small clusters instead of contaminating real ones (the
found-cluster criterion only credits distinct true clusters, so extra
clusters never inflate the score)."""


def cure_found(
    dataset: SyntheticDataset, sample_points: np.ndarray, n_clusters: int
) -> int:
    """Found-cluster count after CURE on the given sample (paper's
    settings: 10 representatives, shrink 0.3)."""
    target = n_clusters + EXTRA_CLUSTERS
    if sample_points.shape[0] <= target:
        return 0
    result = CureClustering(
        n_clusters=target,
        n_representatives=10,
        shrink_factor=0.3,
    ).fit(sample_points)
    return count_found_clusters(result, dataset.clusters)


def run_biased(
    dataset: SyntheticDataset,
    sample_size: int,
    exponent: float,
    n_clusters: int,
    seed: int = 0,
    n_kernels: int = 1000,
    n_seeds: int = 1,
) -> float:
    """Biased sample -> CURE -> found clusters (averaged over seeds)."""
    found = [
        cure_found(
            dataset,
            biased_sample(
                dataset, sample_size, exponent, n_kernels=n_kernels,
                seed=seed + offset,
            ).points,
            n_clusters,
        )
        for offset in range(n_seeds)
    ]
    return _mean(found)


def run_uniform(
    dataset: SyntheticDataset,
    sample_size: int,
    n_clusters: int,
    seed: int = 0,
    n_seeds: int = 1,
) -> float:
    """Uniform sample -> CURE -> found clusters (RS-CURE)."""
    found = [
        cure_found(
            dataset,
            UniformSampler(
                sample_size, random_state=seed + offset
            ).sample(dataset.points).points,
            n_clusters,
        )
        for offset in range(n_seeds)
    ]
    return _mean(found)


def run_birch(
    dataset: SyntheticDataset, budget: int, n_clusters: int
) -> int:
    """BIRCH over the full dataset with a CF budget of ``budget``.

    Deterministic given the data, so no seed averaging is needed.
    BIRCH gets exactly the true cluster count (its criterion — a center
    inside the true shape — is already generous; extra centers would
    make it trivially satisfiable).
    """
    result = Birch(
        n_clusters=n_clusters,
        threshold=0.0,
        branching_factor=50,
        max_leaf_entries=budget,
    ).fit(dataset.points)
    return len(birch_found_clusters(result, dataset.clusters))


def run_grid(
    dataset: SyntheticDataset,
    sample_size: int,
    exponent: float,
    n_clusters: int,
    seed: int = 0,
    n_seeds: int = 1,
) -> float:
    """Palmer-Faloutsos grid sample -> CURE -> found clusters."""
    found = [
        cure_found(
            dataset,
            GridBiasedSampler(
                sample_size=sample_size,
                exponent=exponent,
                random_state=seed + offset,
            ).sample(dataset.points).points,
            n_clusters,
        )
        for offset in range(n_seeds)
    ]
    return _mean(found)


def _mean(found: list) -> float:
    value = float(np.mean(found))
    return round(value, 2)
