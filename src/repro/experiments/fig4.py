"""Figure 4: found clusters vs noise level, oversampling dense regions.

100k points in 10 clusters of different densities; noise ``fn`` sweeps
5%-80%. Biased sampling with ``a = 1`` keeps finding (nearly) all 10
clusters deep into the noise range, uniform sampling degrades quickly,
and BIRCH sits in between (insensitive to noise but blind to some
clusters). Three panels: 2-D at 2% and 4% samples, 3-D at 2%.
"""

from __future__ import annotations

from repro.datasets import make_fig4_dataset
from repro.experiments._common import (
    run_biased,
    run_birch,
    run_uniform,
    scaled,
)
from repro.experiments.registry import experiment
from repro.experiments.reporting import ExperimentResult

__all__ = [
    "NOISE_LEVELS",
    "run",
]

_PAPER_N = 100_000
NOISE_LEVELS = (0.05, 0.1, 0.2, 0.4, 0.6, 0.8)
_PANELS = (
    ("2 dims, sample 2%", 2, 0.02),
    ("2 dims, sample 4%", 2, 0.04),
    ("3 dims, sample 2%", 3, 0.02),
)


@experiment(
    "fig4",
    "found clusters vs noise: biased a=1 vs uniform vs BIRCH",
    "Figure 4(a)(b)(c)",
)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="fig4",
        description="clusters found (of 10) as noise grows from 5% to 80%",
    )
    n_points = scaled(_PAPER_N, scale, minimum=5000)
    for title, n_dims, fraction in _PANELS:
        table = result.new_table(
            title,
            ["noise_pct", "biased_a1", "uniform_cure", "birch"],
        )
        for noise in NOISE_LEVELS:
            dataset = make_fig4_dataset(
                n_dims=n_dims,
                noise_fraction=noise,
                n_points=n_points,
                random_state=seed,
            )
            budget = max(50, int(fraction * dataset.n_points))
            table.add_row(
                int(noise * 100),
                run_biased(dataset, budget, exponent=1.0, n_clusters=10,
                           seed=seed, n_seeds=3),
                run_uniform(dataset, budget, n_clusters=10, seed=seed,
                            n_seeds=3),
                run_birch(dataset, budget, n_clusters=10),
            )
    result.notes.append(
        "paper's shape: biased a=1 finds all 10 clusters up to ~70% "
        "noise; uniform drops off well before; BIRCH is noise-robust but "
        "misses small clusters throughout."
    )
    return result
