"""Section 4.3 "Real Datasets": the geospatial case studies.

On the NorthEast postal data the paper identifies the three largest
metropolitan areas (New York, Philadelphia, Boston) from a biased
sample, while "random sampling fails to identify these high density
areas because there is also a lot of noise, in the form of widely
distributed rural areas and smaller population centers"; California
behaves the same. This experiment runs both pipelines on the parametric
stand-ins (see DESIGN.md substitutions) and scores metro recovery.
"""

from __future__ import annotations

from repro.datasets import california_dataset, northeast_dataset
from repro.experiments._common import run_biased, run_uniform, scaled
from repro.experiments.registry import experiment
from repro.experiments.reporting import ExperimentResult

__all__ = ["run"]


@experiment(
    "geo",
    "metro-area recovery on the NorthEast / California stand-ins",
    "Section 4.3, Real Datasets",
)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="geo",
        description="metropolitan clusters found from 2% samples",
    )
    table = result.new_table(
        "found metro clusters",
        ["dataset", "metros", "biased_a1", "uniform_cure"],
    )
    for name, dataset in (
        (
            "NorthEast (130k stand-in)",
            northeast_dataset(
                n_points=scaled(130_000, scale, 10_000), random_state=seed
            ),
        ),
        (
            "California (62.5k stand-in)",
            california_dataset(
                n_points=scaled(62_553, scale, 10_000), random_state=seed
            ),
        ),
    ):
        budget = max(100, int(0.02 * dataset.n_points))
        # The clusterer asks for a handful of clusters; only the metro
        # cores have ground-truth shapes, towns/rural count as noise.
        table.add_row(
            name,
            dataset.n_clusters,
            run_biased(dataset, budget, exponent=1.0,
                       n_clusters=dataset.n_clusters, seed=seed, n_seeds=3),
            run_uniform(dataset, budget,
                        n_clusters=dataset.n_clusters, seed=seed, n_seeds=3),
        )
    result.notes.append(
        "paper: biased sampling recovers all three NorthEast metros; "
        "uniform sampling loses them in the rural scatter."
    )
    return result
