"""Figure 2: running time of the clustering pipeline vs sample size.

The paper draws samples of 1,000-19,000 points from a 1M-point dataset
(1000 kernels) and plots the total running time of BS-CURE (density
estimation + sampling passes + hierarchical clustering of the biased
sample) against RS-CURE (scan + hierarchical clustering of the uniform
sample). Both curves grow quadratically with the sample size; the
sampling overhead of BS-CURE is a constant additive cost, and because a
biased sample of half the size matches the cluster quality of a uniform
sample (Figure 3 / Theorem 1), BS-CURE reaches equal quality roughly 4x
faster.
"""

from __future__ import annotations

from repro.clustering import CureClustering
from repro.core import DensityBiasedSampler, UniformSampler
from repro.datasets import make_clustered_dataset
from repro.density import KernelDensityEstimator
from repro.experiments._common import scaled
from repro.experiments.registry import experiment
from repro.experiments.reporting import ExperimentResult
from repro.obs import Stopwatch

__all__ = ["run"]

_PAPER_N = 1_000_000
_PAPER_SWEEP = (1000, 3000, 5000, 7000, 9000, 11000)


@experiment(
    "fig2",
    "clustering pipeline running time, biased vs uniform sampling",
    "Figure 2",
)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="fig2",
        description="total running time (seconds) of BS-CURE vs RS-CURE "
        "as a function of the sample size",
    )
    n_points = scaled(_PAPER_N, scale)
    dataset = make_clustered_dataset(
        n_points=n_points,
        n_clusters=10,
        n_dims=2,
        noise_fraction=0.1,
        random_state=seed,
    )
    table = result.new_table(
        "running time vs sample size",
        [
            "sample_size",
            "bs_cure_s",
            "rs_cure_s",
            "bs_sampling_s",
            "cure_s",
            "cure_distance_sweeps",
        ],
    )
    for paper_size in _PAPER_SWEEP:
        b = scaled(paper_size, scale, minimum=50)
        bs_total, bs_sampling, bs_cure, sweeps = _time_biased(
            dataset.points, b, seed
        )
        rs_total = _time_uniform(dataset.points, b, seed)
        table.add_row(b, bs_total, rs_total, bs_sampling, bs_cure, sweeps)
    result.notes.append(
        "the paper's reading: both curves are quadratic in the sample "
        "size; biased sampling adds a near-constant overhead (density fit "
        "+ two passes) which is offset because half the sample size gives "
        "the same quality (Figure 3). cure_distance_sweeps counts "
        "vectorised representative-pool scans — the hardware-independent "
        "view of the same growth."
    )
    return result


def _time_biased(
    points, b: int, seed: int
) -> tuple[float, float, float, int]:
    with Stopwatch() as total:
        with Stopwatch() as sampling:
            estimator = KernelDensityEstimator(
                n_kernels=1000, random_state=seed
            )
            sample = DensityBiasedSampler(
                sample_size=b, exponent=0.5, estimator=estimator,
                random_state=seed,
            ).sample(points)
        clusterer = CureClustering(n_clusters=10)
        clusterer.fit(sample.points)
    # Distance sweeps are the hardware-independent work measure: each is
    # one vectorised representative-pool scan (see CureClustering).
    return (
        total.elapsed,
        sampling.elapsed,
        total.elapsed - sampling.elapsed,
        clusterer.n_distance_sweeps_,
    )


def _time_uniform(points, b: int, seed: int) -> float:
    with Stopwatch() as watch:
        sample = UniformSampler(b, random_state=seed).sample(points)
        CureClustering(n_clusters=10).fit(sample.points)
    return watch.elapsed
