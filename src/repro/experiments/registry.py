"""Registry mapping experiment ids to their run functions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ParameterError
from repro.experiments.reporting import ExperimentResult

__all__ = [
    "ExperimentSpec",
    "experiment",
    "get_experiment",
]

RunFunction = Callable[..., ExperimentResult]


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment."""

    name: str
    description: str
    paper_artifact: str
    run: RunFunction


EXPERIMENTS: dict[str, ExperimentSpec] = {}


def experiment(name: str, description: str, paper_artifact: str):
    """Decorator registering ``run(scale, seed) -> ExperimentResult``."""

    def register(func: RunFunction) -> RunFunction:
        if name in EXPERIMENTS:
            raise ParameterError(f"experiment {name!r} registered twice.")
        EXPERIMENTS[name] = ExperimentSpec(
            name=name,
            description=description,
            paper_artifact=paper_artifact,
            run=func,
        )
        return func

    return register


def get_experiment(name: str) -> ExperimentSpec:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise ParameterError(
            f"unknown experiment {name!r}; available: "
            f"{', '.join(sorted(EXPERIMENTS))}."
        ) from None
