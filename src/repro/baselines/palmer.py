"""Grid/hash density-biased sampling (Palmer & Faloutsos, SIGMOD 2000).

The prior technique the paper compares against in Figure 5(c). The data
space is partitioned by an equi-width grid; because the number of cells
is exponential in the dimension, cell counts are kept in a *bounded hash
table* and distinct cells that collide share a counter. A point in a
group holding ``n_i`` points is sampled with probability

``P = b * n_i^(e-1) / sum_j n_j^e``

so ``e = 1`` reduces to uniform sampling, ``e = 0`` gives every occupied
group the same expected number of sample points, and ``e < 0``
oversamples sparse groups aggressively (the paper runs ``e = -0.5``).

The collision behaviour is intentional and faithful: the paper's
critique is exactly that "the quality of the sample degrades with
collisions implicit to any hash based approach", so this implementation
reproduces it (a 5 MB table by default, as in the paper's experiments).
"""

from __future__ import annotations

import numpy as np

from repro.core.biased import BiasedSample
from repro.exceptions import ParameterError
from repro.utils.scaling import MinMaxScaler
from repro.utils.streams import DataStream, as_stream
from repro.utils.validation import check_positive, check_random_state

__all__ = ["GridBiasedSampler"]

_BYTES_PER_COUNTER = 8  # one int64 counter per bucket


class GridBiasedSampler:
    """Hash-of-grid density-biased sampler.

    Dataset passes: 3 — one scan fits the bounding-box scaler, one
    fills the hashed bucket counters, and one performs the biased
    draws.

    Memory: O(m + chunk) — the ``n_buckets`` hashed counters plus one
    in-flight chunk; the accepted rows are an expected-``b`` subset of
    the chunk buffers.

    Parameters
    ----------
    sample_size:
        Target expected sample size ``b``.
    exponent:
        The group exponent ``e`` (``1`` = uniform; the comparison in the
        paper uses ``-0.5``).
    bins_per_dim:
        Grid resolution along each attribute.
    memory_bytes:
        Hash-table budget; the number of buckets is
        ``memory_bytes / 8``. The paper grants 5 MB.
    random_state:
        Seed for the hash mixing constants and the sampling draws.
    """

    #: Dataset scans one sample() costs (audited statically by RA001).
    __n_passes__ = 3

    #: Peak working-memory bound of sample() (audited by RA005).
    __space__ = "O(m + chunk)"

    def __init__(
        self,
        sample_size: int = 1000,
        exponent: float = -0.5,
        bins_per_dim: int = 32,
        memory_bytes: int = 5 * 1024 * 1024,
        random_state=None,
    ) -> None:
        if sample_size < 1:
            raise ParameterError(f"sample_size must be >= 1; got {sample_size}.")
        if bins_per_dim < 1:
            raise ParameterError(
                f"bins_per_dim must be >= 1; got {bins_per_dim}."
            )
        check_positive(memory_bytes, name="memory_bytes")
        self.sample_size = int(sample_size)
        self.exponent = float(exponent)
        self.bins_per_dim = int(bins_per_dim)
        self.n_buckets = max(1, int(memory_bytes) // _BYTES_PER_COUNTER)
        self.random_state = random_state
        # Diagnostics populated by sample().
        self.n_occupied_buckets_: int | None = None
        self.collision_rate_: float | None = None

    def sample(self, data, *, stream: DataStream | None = None) -> BiasedSample:
        """Draw the grid-biased sample (three sequential passes)."""
        source = stream if stream is not None else as_stream(data)
        rng = check_random_state(self.random_state)
        # Multiplicative hashing constants, odd so they are invertible
        # mod 2^64 and mix all index bits.
        mixers = rng.integers(
            1, 2**62, size=source.n_dims, dtype=np.uint64
        ) * np.uint64(2) + np.uint64(1)

        scaler = MinMaxScaler()
        for chunk in source:
            scaler.partial_fit(chunk)

        counts = np.zeros(self.n_buckets, dtype=np.int64)
        n_cells_seen: set[int] = set()
        for chunk in source:
            buckets = self._bucket_ids(chunk, scaler, mixers)
            np.add.at(counts, buckets, 1)
            n_cells_seen.update(np.unique(buckets).tolist())
        occupied = counts > 0
        self.n_occupied_buckets_ = int(occupied.sum())

        # Normaliser over groups: sum of n_i^e for occupied buckets.
        group_mass = float((counts[occupied].astype(float) ** self.exponent).sum())
        if group_mass <= 0:
            raise ParameterError("grid sampler saw no data.")

        n = len(source)
        idx_parts, pt_parts, prob_parts = [], [], []
        expected = 0.0
        for start, chunk in source.iter_with_offsets():
            buckets = self._bucket_ids(chunk, scaler, mixers)
            group_n = counts[buckets].astype(float)
            probs = np.minimum(
                1.0,
                self.sample_size * group_n ** (self.exponent - 1.0) / group_mass,
            )
            expected += float(probs.sum())
            keep = rng.random(chunk.shape[0]) < probs
            if keep.any():
                idx_parts.append(start + np.nonzero(keep)[0])
                pt_parts.append(chunk[keep])
                prob_parts.append(probs[keep])

        if pt_parts:
            points = np.vstack(pt_parts)
            indices = np.concatenate(idx_parts)
            probabilities = np.concatenate(prob_parts)
        else:
            points = np.empty((0, source.n_dims))
            indices = np.empty(0, dtype=np.int64)
            probabilities = np.empty(0)
        return BiasedSample(
            points=points,
            indices=indices,
            probabilities=probabilities,
            exponent=self.exponent,
            expected_size=expected,
            n_source=n,
        )

    # -- hashing ---------------------------------------------------------------------

    def _bucket_ids(
        self, chunk: np.ndarray, scaler: MinMaxScaler, mixers: np.ndarray
    ) -> np.ndarray:
        """Hash each point's grid cell into the bounded table."""
        unit = scaler.transform(chunk)
        cells = np.clip(
            (unit * self.bins_per_dim).astype(np.int64),
            0,
            self.bins_per_dim - 1,
        ).astype(np.uint64)
        mixed = np.zeros(chunk.shape[0], dtype=np.uint64)
        for j in range(cells.shape[1]):
            mixed = mixed * np.uint64(0x9E3779B97F4A7C15) + cells[:, j] * mixers[j]
        return (mixed % np.uint64(self.n_buckets)).astype(np.int64)
