"""Baseline samplers the paper compares against."""

from repro.baselines.palmer import GridBiasedSampler

__all__ = ["GridBiasedSampler"]
