"""Command-line entry point: ``python -m repro`` / the ``repro`` script.

Commands
--------
``repro list``
    Show every registered experiment with its paper artifact.
``repro run <id> [--scale S] [--seed N]``
    Run one experiment and print its tables.
``repro run all [--scale S] [--seed N]``
    Run the full suite in registry order.
"""
# The CLI is the terminal surface: stdout IS its output channel, so
# bare print() is the sanctioned sink here.
# repro-lint: disable=RL007

from __future__ import annotations

import argparse
import sys

from repro.exceptions import ReproError
from repro.experiments import EXPERIMENTS, run_experiment
from repro.obs import format_spans

__all__ = [
    "build_parser",
    "main",
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Density-biased sampling reproduction "
        "(Kollios et al., ICDE 2001)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    guide = sub.add_parser(
        "guide", help="print the practitioner's-guide settings for a task"
    )
    guide.add_argument(
        "task",
        choices=("dense-clusters", "small-clusters", "outliers", "coverage"),
    )
    guide.add_argument(
        "--noise", type=float, default=0.0,
        help="expected noise fraction in the dataset (default 0)",
    )

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id from `repro list`")
    run.add_argument(
        "--scale",
        type=float,
        default=0.2,
        help="dataset-size multiplier vs the paper's setup (default 0.2; "
        "1.0 reproduces paper-scale workloads and can take a while)",
    )
    run.add_argument("--seed", type=int, default=0, help="base random seed")
    run.add_argument(
        "--plot",
        action="store_true",
        help="also render sweep tables as ASCII line plots",
    )
    run.add_argument(
        "--trace",
        action="store_true",
        help="print the recorded phase/span tree and counters to stderr",
    )
    run.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="append each run's manifest (counters, timers, span tree) "
        "to PATH as one JSON line",
    )
    run.add_argument(
        "--n-jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker count for parallel passes (-1 = all cores; "
        "default: the REPRO_N_JOBS environment variable, else serial). "
        "Results are byte-identical for any value.",
    )
    run.add_argument(
        "--fault-policy",
        choices=("strict", "quarantine", "repair"),
        default=None,
        help="how streams handle invalid (NaN/Inf) rows: strict raises "
        "a typed error naming pass and chunk offset (default), "
        "quarantine drops and counts them, repair imputes from chunk "
        "statistics; counts land in the run manifest",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "guide":
        from repro.core import recommend_settings

        rec = recommend_settings(args.task, noise_level=args.noise)
        print(f"task: {args.task} (noise {args.noise:.0%})")
        print(f"  exponent a            : {rec.exponent}")
        print(f"  kernels               : {rec.n_kernels}")
        print(f"  sample fraction       : {rec.sample_fraction:.1%}")
        print(f"  density floor fraction: {rec.density_floor_fraction}")
        print(f"  why: {rec.rationale}")
        return 0

    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            spec = EXPERIMENTS[name]
            print(f"{name.ljust(width)}  [{spec.paper_artifact}] "
                  f"{spec.description}")
        return 0

    names = (
        sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    try:
        for name in names:
            result = run_experiment(name, scale=args.scale, seed=args.seed,
                                    plot=args.plot,
                                    metrics_out=args.metrics_out,
                                    n_jobs=args.n_jobs,
                                    fault_policy=args.fault_policy)
            if args.trace and result.manifest is not None:
                manifest = result.manifest
                print(f"[trace] {name}", file=sys.stderr)
                print(format_spans(manifest.spans), file=sys.stderr)
                counters = "  ".join(
                    f"{key}={value:g}"
                    for key, value in sorted(manifest.counters.items())
                )
                print(f"[trace] counters: {counters}", file=sys.stderr)
            print()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via -m
    raise SystemExit(main())
