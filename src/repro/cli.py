"""Command-line entry point: ``python -m repro`` / the ``repro`` script.

Commands
--------
``repro list``
    Show every registered experiment with its paper artifact.
``repro run <id> [--scale S] [--seed N]``
    Run one experiment and print its tables.
``repro run all [--scale S] [--seed N]``
    Run the full suite in registry order.
``repro trace export <manifest> --format chrome|prometheus``
    Export a recorded manifest as a Chrome/Perfetto trace or a
    Prometheus scrape.
``repro trace diff <baseline> <candidate>``
    Compare two manifests phase-by-phase; exit 1 on regression.
``repro trace coverage <manifest>``
    Report how much of each phase's wall time its child spans explain.
"""
# The CLI is the terminal surface: stdout IS its output channel, so
# bare print() is the sanctioned sink here.
# repro-lint: disable=RL007

from __future__ import annotations

import argparse
import sys

from repro.exceptions import ReproError
from repro.experiments import EXPERIMENTS, run_experiment
from repro.obs import format_spans

__all__ = [
    "build_parser",
    "main",
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Density-biased sampling reproduction "
        "(Kollios et al., ICDE 2001)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    guide = sub.add_parser(
        "guide", help="print the practitioner's-guide settings for a task"
    )
    guide.add_argument(
        "task",
        choices=("dense-clusters", "small-clusters", "outliers", "coverage"),
    )
    guide.add_argument(
        "--noise", type=float, default=0.0,
        help="expected noise fraction in the dataset (default 0)",
    )

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id from `repro list`")
    run.add_argument(
        "--scale",
        type=float,
        default=0.2,
        help="dataset-size multiplier vs the paper's setup (default 0.2; "
        "1.0 reproduces paper-scale workloads and can take a while)",
    )
    run.add_argument("--seed", type=int, default=0, help="base random seed")
    run.add_argument(
        "--plot",
        action="store_true",
        help="also render sweep tables as ASCII line plots",
    )
    run.add_argument(
        "--trace",
        action="store_true",
        help="print the recorded phase/span tree and counters to stderr",
    )
    run.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="append each run's manifest (counters, timers, span tree) "
        "to PATH as one JSON line",
    )
    run.add_argument(
        "--n-jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker count for parallel passes (-1 = all cores; "
        "default: the REPRO_N_JOBS environment variable, else serial). "
        "Results are byte-identical for any value.",
    )
    run.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="S",
        help="split each fit/eval/gather pass into S row-range shards "
        "fanned out through the parallel backend (default: the "
        "REPRO_SHARDS environment variable, else unsharded). Results "
        "are byte-identical for any value.",
    )
    run.add_argument(
        "--density-backend",
        choices=("kde", "tree"),
        default=None,
        help="density-estimator family for every default-built "
        "estimator in the run: kde (the paper's kernel sum) or tree "
        "(random-partition forest; coarser estimates, much faster "
        "lookups). Default: the REPRO_DENSITY_BACKEND environment "
        "variable, else kde.",
    )
    run.add_argument(
        "--fault-policy",
        choices=("strict", "quarantine", "repair"),
        default=None,
        help="how streams handle invalid (NaN/Inf) rows: strict raises "
        "a typed error naming pass and chunk offset (default), "
        "quarantine drops and counts them, repair imputes from chunk "
        "statistics; counts land in the run manifest",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="profile every traced phase (cProfile, scoped per span); "
        "per-function tables attach to the spans and the manifest",
    )
    run.add_argument(
        "--memory",
        action="store_true",
        help="trace allocations (tracemalloc); every span gains a "
        "bytes_alloc attribute",
    )

    trace = sub.add_parser(
        "trace", help="export, diff or analyse recorded run manifests"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    export = trace_sub.add_parser(
        "export", help="export a manifest as a trace/scrape file"
    )
    export.add_argument("manifest", help="manifest file (.jsonl or .json)")
    export.add_argument(
        "--format",
        choices=("chrome", "prometheus"),
        default="chrome",
        help="chrome: Perfetto-loadable trace-event JSON; "
        "prometheus: text exposition (default: chrome)",
    )
    export.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="output file (default: stdout)",
    )
    export.add_argument(
        "--run",
        metavar="NAME",
        default=None,
        help="when the file holds several manifests, pick this run name "
        "(default: the first manifest)",
    )
    export.add_argument(
        "--validate",
        action="store_true",
        help="validate the export (Chrome: B/E pairing and event shape; "
        "Prometheus: round-trip through the minimal parser) and fail "
        "on any problem",
    )

    diff = trace_sub.add_parser(
        "diff", help="compare two manifests phase-by-phase"
    )
    diff.add_argument("baseline", help="baseline manifest file")
    diff.add_argument("candidate", help="candidate manifest file")
    diff.add_argument(
        "--budget",
        type=float,
        default=2.0,
        help="timing noise budget: a phase regresses only beyond this "
        "slowdown factor (default 2.0)",
    )
    diff.add_argument(
        "--counters-only",
        action="store_true",
        help="compare deterministic counters only (exit 1 on any "
        "difference), ignoring wall-clock",
    )
    diff.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="PATTERN",
        help="exclude counters matching this fnmatch pattern from the "
        "comparison (repeatable); e.g. --ignore 'shard*' when diffing "
        "a sharded run against a serial baseline",
    )

    coverage = trace_sub.add_parser(
        "coverage", help="span-tree attribution report for a manifest"
    )
    coverage.add_argument("manifest", help="manifest file (.jsonl or .json)")
    coverage.add_argument(
        "--min",
        type=float,
        default=None,
        metavar="FRACTION",
        dest="min_coverage",
        help="fail (exit 1) if any phase attributes less than FRACTION "
        "of its wall time to child spans",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "trace":
        return _trace_main(args)
    if args.command == "guide":
        from repro.core import recommend_settings

        rec = recommend_settings(args.task, noise_level=args.noise)
        print(f"task: {args.task} (noise {args.noise:.0%})")
        print(f"  exponent a            : {rec.exponent}")
        print(f"  kernels               : {rec.n_kernels}")
        print(f"  sample fraction       : {rec.sample_fraction:.1%}")
        print(f"  density floor fraction: {rec.density_floor_fraction}")
        print(f"  why: {rec.rationale}")
        return 0

    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            spec = EXPERIMENTS[name]
            print(f"{name.ljust(width)}  [{spec.paper_artifact}] "
                  f"{spec.description}")
        return 0

    names = (
        sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    try:
        for name in names:
            result = run_experiment(name, scale=args.scale, seed=args.seed,
                                    plot=args.plot,
                                    metrics_out=args.metrics_out,
                                    n_jobs=args.n_jobs,
                                    shards=args.shards,
                                    density_backend=args.density_backend,
                                    fault_policy=args.fault_policy,
                                    profile=args.profile,
                                    memory=args.memory)
            if args.trace and result.manifest is not None:
                manifest = result.manifest
                print(f"[trace] {name}", file=sys.stderr)
                print(format_spans(manifest.spans), file=sys.stderr)
                counters = "  ".join(
                    f"{key}={value:g}"
                    for key, value in sorted(manifest.counters.items())
                )
                print(f"[trace] counters: {counters}", file=sys.stderr)
            print()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _load_one_manifest(path: str, run: str | None = None):
    """Load one manifest from ``path`` (exits 2 on any load problem)."""
    from repro.obs import load_manifests

    try:
        manifests = load_manifests(path)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load {path}: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc
    if run is not None:
        manifests = [m for m in manifests if m.name == run]
    if not manifests:
        qualifier = f" for run {run!r}" if run is not None else ""
        print(f"error: no manifest{qualifier} in {path}", file=sys.stderr)
        raise SystemExit(2)
    return manifests[-1]


def _trace_main(args) -> int:
    from repro.obs import (
        diff_manifests,
        parse_prometheus,
        span_coverage,
        to_chrome_trace,
        to_prometheus,
        validate_chrome_trace,
    )

    if args.trace_command == "export":
        import json

        manifest = _load_one_manifest(args.manifest, args.run)
        if args.format == "chrome":
            trace = to_chrome_trace(manifest)
            if args.validate:
                problems = validate_chrome_trace(trace)
                if problems:
                    for problem in problems:
                        print(f"invalid trace: {problem}", file=sys.stderr)
                    return 1
            text = json.dumps(trace, indent=2) + "\n"
        else:
            text = to_prometheus(manifest)
            if args.validate:
                try:
                    parse_prometheus(text)
                except ValueError as exc:
                    print(f"invalid exposition: {exc}", file=sys.stderr)
                    return 1
        if args.output is None:
            sys.stdout.write(text)
        else:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {args.format} export to {args.output}")
        return 0

    if args.trace_command == "diff":
        baseline = _load_one_manifest(args.baseline)
        candidate = _load_one_manifest(args.candidate)
        try:
            result = diff_manifests(
                baseline,
                candidate,
                budget=args.budget,
                counters_only=args.counters_only,
                ignore=tuple(args.ignore),
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(result.format())
        return result.exit_code

    manifest = _load_one_manifest(args.manifest)
    coverage = span_coverage(manifest)
    if not coverage:
        print("no phase ran long enough to attribute (all spans are "
              "leaves or sub-5ms)")
        return 0
    failed = False
    for name in sorted(coverage):
        fraction = coverage[name]
        flag = ""
        if args.min_coverage is not None and fraction < args.min_coverage:
            flag = "  [BELOW MIN]"
            failed = True
        print(f"{name:<28} {fraction:6.1%}{flag}")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via -m
    raise SystemExit(main())
