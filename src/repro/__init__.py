"""repro: density-biased sampling for approximate data mining.

A full reproduction of G. Kollios, D. Gunopulos, N. Koudas and
S. Berchtold, *An Efficient Approximation Scheme for Data Mining Tasks*
(ICDE 2001): density-biased sampling built on one-pass kernel density
estimation, with the clustering (CURE-style hierarchical, BIRCH,
K-means/K-medoids) and outlier-detection (DB(p, k)) stacks it plugs
into, the Palmer-Faloutsos grid baseline it is compared against, the
paper's synthetic and geospatial workloads, and an experiment harness
regenerating every table and figure of the evaluation section.

Quick start::

    import numpy as np
    from repro import DensityBiasedSampler, CureClustering

    data = np.random.default_rng(0).normal(size=(100_000, 2))
    sample = DensityBiasedSampler(sample_size=1000, exponent=1.0,
                                  random_state=0).sample(data)
    clusters = CureClustering(n_clusters=10).fit(sample.points)
"""

from repro.core import (
    BiasedSample,
    DensityBiasedSampler,
    OnePassBiasedSampler,
    SamplerRecommendation,
    UniformSampler,
    recommend_settings,
)
from repro.density import (
    DctDensityEstimator,
    GridDensityEstimator,
    KernelDensityEstimator,
    KnnDensityEstimator,
    TreeDensityEstimator,
    WaveletDensityEstimator,
    make_density_estimator,
    use_density_backend,
)
from repro.clustering import (
    AgglomerativeClustering,
    Birch,
    Clarans,
    CureClustering,
    SublinearKMedian,
    KMeans,
    KMedoids,
    assign_to_clusters,
)
from repro.outliers import (
    ApproximateOutlierDetector,
    CellBasedOutlierDetector,
    IndexedOutlierDetector,
    NestedLoopOutlierDetector,
)
from repro.baselines import GridBiasedSampler
from repro.faults import (
    FaultPlan,
    FaultyStream,
    RetryPolicy,
    RowQuarantine,
    use_fault_policy,
)
from repro.obs import (
    Recorder,
    RunManifest,
    get_recorder,
    recording,
    use_recorder,
)
from repro.pipeline import ApproximateClusteringPipeline, PipelineResult
from repro.exceptions import (
    ConvergenceWarning,
    DataValidationError,
    NotFittedError,
    ParameterError,
    ReproError,
    StreamReadError,
    TransientIOError,
)

__version__ = "1.0.0"

__all__ = [
    "BiasedSample",
    "DensityBiasedSampler",
    "OnePassBiasedSampler",
    "UniformSampler",
    "recommend_settings",
    "SamplerRecommendation",
    "KernelDensityEstimator",
    "GridDensityEstimator",
    "TreeDensityEstimator",
    "KnnDensityEstimator",
    "WaveletDensityEstimator",
    "DctDensityEstimator",
    "make_density_estimator",
    "use_density_backend",
    "CureClustering",
    "Birch",
    "KMeans",
    "KMedoids",
    "Clarans",
    "SublinearKMedian",
    "AgglomerativeClustering",
    "assign_to_clusters",
    "ApproximateOutlierDetector",
    "IndexedOutlierDetector",
    "CellBasedOutlierDetector",
    "NestedLoopOutlierDetector",
    "GridBiasedSampler",
    "FaultPlan",
    "FaultyStream",
    "RetryPolicy",
    "RowQuarantine",
    "use_fault_policy",
    "ApproximateClusteringPipeline",
    "PipelineResult",
    "Recorder",
    "RunManifest",
    "get_recorder",
    "recording",
    "use_recorder",
    "ReproError",
    "NotFittedError",
    "DataValidationError",
    "ParameterError",
    "ConvergenceWarning",
    "StreamReadError",
    "TransientIOError",
    "__version__",
]
