"""One-call pipelines bundling the paper's sample-then-mine recipe.

The primitives (sampler, clusterer, assignment) compose in three lines,
but the composition *is* the paper's method — these classes package it
with the right defaults so application code can run approximate
clustering on a huge dataset as a single call:

    result = ApproximateClusteringPipeline(n_clusters=10).fit(data)
    result.labels            # every input point labelled
    result.clustering        # the sample-level ClusteringResult
    result.sample            # the biased sample that was used
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.clustering.assignment import assign_to_clusters
from repro.clustering.base import Clusterer, ClusteringResult
from repro.clustering.cure import CureClustering
from repro.core.biased import BiasedSample
from repro.core.guide import recommend_settings
from repro.density.backends import use_density_backend
from repro.exceptions import ParameterError
from repro.faults import use_fault_policy
from repro.obs import Recorder, get_recorder, use_recorder
from repro.parallel import use_n_jobs
from repro.utils.streams import DataStream, as_stream

__all__ = [
    "PipelineResult",
    "ApproximateClusteringPipeline",
]


@dataclass(frozen=True)
class PipelineResult:
    """Everything one pipeline run produced.

    Attributes
    ----------
    labels:
        Cluster label per input point (``-1`` where the sample-level
        clusterer marked its members as noise does *not* propagate —
        full-data assignment always picks the nearest cluster).
    clustering:
        The sample-level :class:`ClusteringResult` (centers,
        representatives, sample labels).
    sample:
        The :class:`BiasedSample` the clusterer consumed.
    n_passes:
        Sequential dataset passes spent end to end.
    """

    labels: np.ndarray
    clustering: ClusteringResult
    sample: BiasedSample
    n_passes: int


class ApproximateClusteringPipeline:
    """Biased sample -> cluster -> label the full dataset.

    Parameters
    ----------
    n_clusters:
        Clusters to report.
    task, noise_level:
        Practitioner's-guide knobs choosing the exponent and sample
        fraction (see :func:`repro.core.recommend_settings`); ignored
        when an explicit ``sampler`` is supplied.
    sampler:
        Optional pre-configured sampler (any object with
        ``sample(data, stream=...) -> BiasedSample``).
    clusterer:
        Optional sample-level clusterer; defaults to the paper's
        CURE-style hierarchical algorithm with a small over-clustering
        margin for noise.
    assignment_policy:
        ``"representatives"`` (CURE's rule, default) or ``"centers"``.
    random_state:
        Seed for the default sampler.
    density_backend:
        Density-estimator family for the default sampler (``"kde"``,
        ``"tree"``); ``None`` leaves the ambient default /
        ``REPRO_DENSITY_BACKEND`` resolution in place (see
        :mod:`repro.density.backends`). Ignored when an explicit
        ``sampler`` is supplied.
    n_jobs:
        Worker count installed as the ambient default for the whole
        fit (sampling, clustering, assignment); ``None`` leaves the
        ambient default / ``REPRO_N_JOBS`` resolution in place. See
        :mod:`repro.parallel`; results are byte-identical for any
        value.
    fault_policy:
        Invalid-row handling installed as the ambient policy for the
        whole fit: a mode name (``"strict"``, ``"quarantine"``,
        ``"repair"``), a :class:`repro.faults.RowQuarantine`, or
        ``None`` to leave the ambient policy in place (default
        strict). Streams built *inside* the fit — including the one
        wrapping a plain ``data`` array — bind this policy; a
        pre-built ``stream`` argument keeps the policy it was
        constructed with.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> data = np.vstack([rng.normal(c, 0.05, (2000, 2))
    ...                   for c in ((0, 0), (1, 1))])
    >>> result = ApproximateClusteringPipeline(
    ...     n_clusters=2, random_state=0).fit(data)
    >>> result.labels.shape
    (4000,)
    >>> result.n_passes
    4
    """

    def __init__(
        self,
        n_clusters: int,
        task: str = "dense-clusters",
        noise_level: float = 0.0,
        sampler=None,
        clusterer: Clusterer | None = None,
        assignment_policy: str = "representatives",
        random_state=None,
        density_backend: str | None = None,
        n_jobs: int | None = None,
        fault_policy=None,
    ) -> None:
        if n_clusters < 1:
            raise ParameterError(f"n_clusters must be >= 1; got {n_clusters}.")
        self.n_clusters = int(n_clusters)
        self.task = task
        self.noise_level = noise_level
        self.sampler = sampler
        self.clusterer = clusterer
        self.assignment_policy = assignment_policy
        self.random_state = random_state
        self.density_backend = density_backend
        self.n_jobs = n_jobs
        self.fault_policy = fault_policy

    def fit(self, data, *, stream: DataStream | None = None) -> PipelineResult:
        """Run the full pipeline over ``data`` (or an explicit stream).

        Dataset passes are counted by the ambient :mod:`repro.obs`
        recorder; when observability is off, a private recorder is
        installed for the duration of the fit so
        :attr:`PipelineResult.n_passes` is still exact.
        """
        recorder = get_recorder()
        if not recorder.enabled:
            recorder = Recorder()
        jobs_context = (
            use_n_jobs(self.n_jobs)
            if self.n_jobs is not None
            else nullcontext()
        )
        policy_context = (
            use_fault_policy(self.fault_policy)
            if self.fault_policy is not None
            else nullcontext()
        )
        backend_context = (
            use_density_backend(self.density_backend)
            if self.density_backend is not None
            else nullcontext()
        )
        with use_recorder(recorder), jobs_context, policy_context, (
            backend_context
        ):
            # The stream is built inside the contexts so a plain array
            # binds the pipeline's fault policy and its construction-time
            # quarantine counts land on this recorder.
            source = stream if stream is not None else as_stream(data)
            passes_before = recorder.counters.get("data_passes", 0)
            with recorder.phase("pipeline_fit"):
                result = self._fit(source)
            n_passes = int(
                recorder.counters.get("data_passes", 0) - passes_before
            )
        return PipelineResult(
            labels=result[0],
            clustering=result[1],
            sample=result[2],
            n_passes=n_passes,
        )

    def _fit(self, source: DataStream):
        """The three pipeline stages; returns (labels, clustering, sample)."""
        recorder = get_recorder()
        sampler = self.sampler
        if sampler is None:
            recommendation = recommend_settings(
                self.task, noise_level=self.noise_level
            )
            sampler = recommendation.make_sampler(
                len(source), random_state=self.random_state
            )
            # The guide's 1% rule targets 100k+ datasets; on small
            # inputs keep enough points per cluster to be clusterable.
            floor = min(40 * self.n_clusters, len(source) // 2)
            sampler.sample_size = max(sampler.sample_size, floor)
        with recorder.phase("sample"):
            sample = sampler.sample(None, stream=source)
        if len(sample) <= self.n_clusters:
            raise ParameterError(
                f"the sample holds only {len(sample)} points for "
                f"{self.n_clusters} clusters; raise the sample size."
            )

        clusterer = self.clusterer
        if clusterer is None:
            # A small over-clustering margin lets residual noise form
            # its own clusters; the largest n_clusters are reported.
            clusterer = CureClustering(
                n_clusters=min(self.n_clusters + 3, len(sample) - 1)
            )
        with recorder.phase("cluster"):
            clustering = clusterer.fit(sample.points)
            clustering = _keep_largest(clustering, self.n_clusters)

        with recorder.phase("assign"):
            labels = assign_to_clusters(
                None,
                clustering,
                policy=self.assignment_policy,
                stream=source,
            )
        return labels, clustering, sample


def _keep_largest(
    clustering: ClusteringResult, n_clusters: int
) -> ClusteringResult:
    """Restrict a clustering to its ``n_clusters`` largest clusters."""
    if clustering.n_clusters <= n_clusters:
        return clustering
    order = np.argsort(-clustering.sizes)[:n_clusters]
    relabel = {int(old): new for new, old in enumerate(order)}
    labels = np.array(
        [relabel.get(int(label), -1) for label in clustering.labels],
        dtype=np.int64,
    )
    return ClusteringResult(
        labels=labels,
        centers=clustering.centers[order],
        representatives=[clustering.representatives[i] for i in order],
        sizes=clustering.sizes[order],
    )
