"""Market-basket transaction data: container + Quest-style generator.

Transactions are stored as a boolean incidence matrix (transactions by
items) so support counting vectorises; the generator follows the
classic IBM Quest recipe — draw maximal potential itemsets ("patterns"),
then build each transaction as a union of a few (possibly corrupted)
patterns plus random noise items — which produces the skewed support
distributions real basket data exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ParameterError
from repro.utils.validation import check_random_state

__all__ = [
    "TransactionDataset",
    "make_transaction_dataset",
]


@dataclass
class TransactionDataset:
    """A set of transactions over an item universe.

    Attributes
    ----------
    matrix:
        Boolean incidence matrix, shape ``(n_transactions, n_items)``.
    patterns:
        The generating patterns (ground truth for tests), item-index
        tuples; empty for datasets not built by the generator.
    """

    matrix: np.ndarray
    patterns: list[tuple[int, ...]]

    @property
    def n_transactions(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_items(self) -> int:
        return self.matrix.shape[1]

    def transaction(self, row: int) -> tuple[int, ...]:
        """The item indices of one transaction."""
        return tuple(np.nonzero(self.matrix[row])[0].tolist())

    def lengths(self) -> np.ndarray:
        """Items per transaction."""
        return self.matrix.sum(axis=1)

    def support(self, itemset) -> float:
        """Fraction of transactions containing every item of ``itemset``."""
        items = list(itemset)
        if not items:
            return 1.0
        return float(self.matrix[:, items].all(axis=1).mean())

    def subset(self, rows) -> "TransactionDataset":
        """A new dataset restricted to the given transaction rows."""
        return TransactionDataset(
            matrix=self.matrix[np.asarray(rows, dtype=np.int64)],
            patterns=list(self.patterns),
        )


def make_transaction_dataset(
    n_transactions: int = 10_000,
    n_items: int = 200,
    n_patterns: int = 20,
    pattern_length: float = 4.0,
    patterns_per_transaction: float = 2.0,
    noise_items: float = 2.0,
    corruption: float = 0.25,
    random_state=None,
) -> TransactionDataset:
    """Generate Quest-style basket data.

    Parameters
    ----------
    n_transactions, n_items:
        Dataset dimensions.
    n_patterns:
        Number of frequent "potential itemsets" planted.
    pattern_length:
        Mean items per pattern (Poisson, at least 1).
    patterns_per_transaction:
        Mean patterns mixed into each transaction (Poisson).
    noise_items:
        Mean random extra items per transaction (Poisson).
    corruption:
        Probability that each item of a chosen pattern is dropped from
        the transaction (models partial purchases).
    random_state:
        Seed or generator for the draws.

    Examples
    --------
    >>> data = make_transaction_dataset(n_transactions=100, random_state=0)
    >>> data.n_transactions, data.n_items
    (100, 200)
    """
    if n_transactions < 1 or n_items < 2:
        raise ParameterError("need n_transactions >= 1 and n_items >= 2.")
    if n_patterns < 1:
        raise ParameterError(f"n_patterns must be >= 1; got {n_patterns}.")
    if not 0.0 <= corruption < 1.0:
        raise ParameterError(f"corruption must be in [0, 1); got {corruption}.")
    rng = check_random_state(random_state)

    # Patterns: skewed popularity (earlier patterns picked more often).
    patterns: list[tuple[int, ...]] = []
    for _ in range(n_patterns):
        length = max(1, rng.poisson(pattern_length))
        length = min(length, n_items)
        patterns.append(
            tuple(sorted(rng.choice(n_items, size=length, replace=False)))
        )
    popularity = 1.0 / np.arange(1, n_patterns + 1)  # zipfian
    popularity /= popularity.sum()

    matrix = np.zeros((n_transactions, n_items), dtype=bool)
    for row in range(n_transactions):
        n_mix = max(1, rng.poisson(patterns_per_transaction))
        chosen = rng.choice(n_patterns, size=n_mix, p=popularity)
        for pattern_idx in chosen:
            for item in patterns[pattern_idx]:
                if corruption == 0.0 or rng.random() >= corruption:
                    matrix[row, item] = True
        n_noise = rng.poisson(noise_items)
        if n_noise:
            noise = rng.choice(n_items, size=min(n_noise, n_items),
                               replace=False)
            matrix[row, noise] = True
    return TransactionDataset(matrix=matrix, patterns=patterns)
