"""Apriori frequent-itemset mining and association rules.

The classic level-wise algorithm: frequent k-itemsets are joined to
form (k+1)-candidates, candidates with an infrequent subset are pruned
(the Apriori property), and supports are counted against the boolean
incidence matrix in one vectorised sweep per candidate. Weighted
transactions are supported so Horvitz-Thompson-corrected samples can be
mined directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.exceptions import ParameterError
from repro.mining.transactions import TransactionDataset

__all__ = [
    "apriori",
    "Rule",
    "association_rules",
]


def apriori(
    data: TransactionDataset,
    min_support: float,
    max_length: int | None = None,
    transaction_weights=None,
) -> dict[frozenset[int], float]:
    """All itemsets with (weighted) support at least ``min_support``.

    Parameters
    ----------
    data:
        The transactions.
    min_support:
        Support threshold as a fraction of the (weighted) transaction
        count, in (0, 1].
    max_length:
        Optional cap on itemset size.
    transaction_weights:
        Optional per-transaction weights; supports become weighted
        fractions (used for inverse-probability-corrected samples).

    Returns
    -------
    dict
        ``frozenset(items) -> support``.

    Examples
    --------
    >>> from repro.mining import make_transaction_dataset
    >>> data = make_transaction_dataset(n_transactions=300, random_state=0)
    >>> frequent = apriori(data, min_support=0.1)
    >>> all(len(s) >= 1 for s in frequent)
    True
    """
    if not 0.0 < min_support <= 1.0:
        raise ParameterError(
            f"min_support must be in (0, 1]; got {min_support}."
        )
    if max_length is not None and max_length < 1:
        raise ParameterError(f"max_length must be >= 1; got {max_length}.")
    matrix = data.matrix
    if transaction_weights is None:
        weights = np.ones(matrix.shape[0])
    else:
        weights = np.asarray(transaction_weights, dtype=np.float64)
        if weights.shape != (matrix.shape[0],):
            raise ParameterError(
                "transaction_weights must have one entry per transaction."
            )
        if (weights < 0).any() or weights.sum() <= 0:
            raise ParameterError(
                "transaction_weights must be non-negative, positive total."
            )
    total = weights.sum()

    # Level 1: single items.
    item_support = (weights @ matrix) / total
    frequent: dict[frozenset[int], float] = {
        frozenset((item,)): float(support)
        for item, support in enumerate(item_support)
        if support >= min_support
    }
    level = sorted(
        (tuple(sorted(s)) for s in frequent), key=lambda t: t
    )

    length = 1
    while level and (max_length is None or length < max_length):
        length += 1
        candidates = _generate_candidates(level)
        level = []
        for candidate in candidates:
            # Apriori pruning: all (k-1)-subsets must be frequent.
            if any(
                frozenset(candidate[:i] + candidate[i + 1 :]) not in frequent
                for i in range(len(candidate))
            ):
                continue
            mask = matrix[:, candidate].all(axis=1)
            support = float((weights @ mask) / total)
            if support >= min_support:
                frequent[frozenset(candidate)] = support
                level.append(candidate)
        level.sort()
    return frequent


def _generate_candidates(
    level: list[tuple[int, ...]],
) -> list[tuple[int, ...]]:
    """Join step: merge itemsets sharing their first k-1 items."""
    out: list[tuple[int, ...]] = []
    n = len(level)
    for i in range(n):
        for j in range(i + 1, n):
            a, b = level[i], level[j]
            if a[:-1] != b[:-1]:
                break  # level is sorted: no further j shares the prefix
            out.append(a + (b[-1],))
    return out


@dataclass(frozen=True)
class Rule:
    """An association rule ``antecedent -> consequent``."""

    antecedent: frozenset[int]
    consequent: frozenset[int]
    support: float
    confidence: float
    lift: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lhs = ",".join(map(str, sorted(self.antecedent)))
        rhs = ",".join(map(str, sorted(self.consequent)))
        return (
            f"{{{lhs}}} -> {{{rhs}}} "
            f"(sup={self.support:.3f}, conf={self.confidence:.3f})"
        )


def association_rules(
    supports: dict[frozenset[int], float],
    min_confidence: float = 0.5,
) -> list[Rule]:
    """Derive rules from a frequent-itemset table.

    For every frequent itemset and every non-trivial split into
    antecedent/consequent, emit the rule when ``confidence = sup(all) /
    sup(antecedent)`` reaches the threshold. Rules are returned sorted
    by descending confidence then support.
    """
    if not 0.0 < min_confidence <= 1.0:
        raise ParameterError(
            f"min_confidence must be in (0, 1]; got {min_confidence}."
        )
    rules: list[Rule] = []
    for itemset, support in supports.items():
        if len(itemset) < 2:
            continue
        items = sorted(itemset)
        for r in range(1, len(items)):
            for antecedent in combinations(items, r):
                lhs = frozenset(antecedent)
                rhs = itemset - lhs
                lhs_support = supports.get(lhs)
                rhs_support = supports.get(rhs)
                if lhs_support is None or lhs_support <= 0:
                    continue
                confidence = support / lhs_support
                if confidence < min_confidence:
                    continue
                lift = (
                    confidence / rhs_support
                    if rhs_support
                    else float("inf")
                )
                rules.append(
                    Rule(
                        antecedent=lhs,
                        consequent=rhs,
                        support=support,
                        confidence=confidence,
                        lift=lift,
                    )
                )
    rules.sort(key=lambda rule: (-rule.confidence, -rule.support))
    return rules
