"""Toivonen-style sampling for association rules (VLDB 1996, cited [28]).

The scheme the paper cites as the sampling success story for rule
mining, and the task its conclusion nominates for biased-sampling
treatment:

1. draw a transaction sample and mine it at a *lowered* support
   threshold (head-room against sampling error);
2. compute the **negative border** — the minimal itemsets *not*
   frequent in the sample (every proper subset is);
3. verify sample-frequent sets *and* the border against the full data
   in one pass. If no border set turns out frequent, the verified
   frequent sets are provably complete — a certificate obtained with a
   single full-data pass.

Both uniform and length-biased sampling are supported. Length-biased
sampling is the basket-data analogue of the paper's density bias
(transactions with more items carry more itemset evidence); supports on
the sample are then Horvitz-Thompson corrected, mirroring section 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from repro.exceptions import ParameterError
from repro.mining.apriori import apriori
from repro.mining.transactions import TransactionDataset
from repro.utils.validation import check_random_state

__all__ = [
    "SampledAprioriResult",
    "negative_border",
    "sampled_apriori",
]


@dataclass
class SampledAprioriResult:
    """Outcome of one sampled mining run.

    Attributes
    ----------
    frequent:
        Verified frequent itemsets with their *exact* full-data support.
    certified:
        True when the negative-border check proves completeness.
    missed_border:
        Border itemsets that turned out frequent in the full data
        (non-empty exactly when ``certified`` is false).
    sample_size:
        Transactions in the sample.
    n_full_passes:
        Full-data passes spent (always 1: the verification pass).
    sample_frequent_count, border_size:
        Work-profile diagnostics.
    """

    frequent: dict[frozenset[int], float]
    certified: bool
    missed_border: dict[frozenset[int], float] = field(default_factory=dict)
    sample_size: int = 0
    n_full_passes: int = 1
    sample_frequent_count: int = 0
    border_size: int = 0


def negative_border(
    frequent: set[frozenset[int]], n_items: int
) -> set[frozenset[int]]:
    """Minimal itemsets not in ``frequent`` whose proper subsets all are.

    Computed level-wise: the border at size 1 is every absent single
    item; at size k+1 it is every union of a frequent k-set with one
    extra item such that all k-subsets are frequent but the union is
    not.

    >>> frequent = {frozenset({0}), frozenset({1}), frozenset({0, 1})}
    >>> sorted(len(s) for s in negative_border(frequent, n_items=3))
    [1]
    """
    border: set[frozenset[int]] = set()
    for item in range(n_items):
        if frozenset((item,)) not in frequent:
            border.add(frozenset((item,)))
    by_size: dict[int, list[frozenset[int]]] = {}
    for itemset in frequent:
        by_size.setdefault(len(itemset), []).append(itemset)
    for size, level in sorted(by_size.items()):
        frequent_items = sorted({i for s in level for i in s})
        seen: set[frozenset[int]] = set()
        for base in level:
            for item in frequent_items:
                if item in base:
                    continue
                candidate = base | {item}
                if candidate in frequent or candidate in seen:
                    continue
                seen.add(candidate)
                subsets_ok = all(
                    frozenset(sub) in frequent
                    for sub in combinations(sorted(candidate), size)
                )
                if subsets_ok:
                    border.add(candidate)
    return border


def sampled_apriori(
    data: TransactionDataset,
    min_support: float,
    sample_size: int,
    lowered_support: float | None = None,
    bias: str = "uniform",
    max_length: int | None = None,
    random_state=None,
) -> SampledAprioriResult:
    """Mine frequent itemsets from a sample, verify on the full data.

    Parameters
    ----------
    data:
        Full transaction dataset.
    min_support:
        The true support threshold (fraction of transactions).
    sample_size:
        Transactions to sample (without replacement).
    lowered_support:
        Threshold used *on the sample*; defaults to Toivonen's
        recommendation of lowering by one sampling standard deviation,
        ``min_support - sqrt(min_support / sample_size)`` (floored).
    bias:
        ``"uniform"`` or ``"length"`` — length-biased inclusion
        probabilities proportional to the transaction size, with
        inverse-probability weights restoring unbiased supports.
    max_length:
        Stop the level-wise search at itemsets of this size.
    random_state:
        Seed or generator for the transaction draws.
    """
    n = data.n_transactions
    if not 1 <= sample_size <= n:
        raise ParameterError(
            f"sample_size must be in [1, {n}]; got {sample_size}."
        )
    if not 0.0 < min_support <= 1.0:
        raise ParameterError(
            f"min_support must be in (0, 1]; got {min_support}."
        )
    if bias not in ("uniform", "length"):
        raise ParameterError(f"bias must be 'uniform' or 'length'; got {bias!r}.")
    rng = check_random_state(random_state)
    if lowered_support is None:
        lowered_support = max(
            1e-6, min_support - np.sqrt(min_support / sample_size)
        )

    rows, weights = _draw(data, sample_size, bias, rng)
    sample = data.subset(rows)
    sample_frequent = apriori(
        sample,
        min_support=lowered_support,
        max_length=max_length,
        transaction_weights=weights,
    )
    border = negative_border(set(sample_frequent), data.n_items)

    # One full pass verifies candidates and border together.
    to_check = list(sample_frequent) + list(border)
    exact = {itemset: data.support(itemset) for itemset in to_check}
    frequent = {
        itemset: support
        for itemset, support in exact.items()
        if itemset in sample_frequent and support >= min_support
    }
    missed = {
        itemset: support
        for itemset, support in exact.items()
        if itemset in border and support >= min_support
    }
    return SampledAprioriResult(
        frequent=frequent,
        certified=not missed,
        missed_border=missed,
        sample_size=sample_size,
        n_full_passes=1,
        sample_frequent_count=len(sample_frequent),
        border_size=len(border),
    )


def _draw(
    data: TransactionDataset,
    sample_size: int,
    bias: str,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Sample rows; return (rows, inverse-probability weights or None)."""
    n = data.n_transactions
    if bias == "uniform":
        rows = rng.choice(n, size=sample_size, replace=False)
        return rows, None
    lengths = data.lengths().astype(np.float64)
    lengths = np.maximum(lengths, 0.5)  # empty transactions stay drawable
    probs = lengths / lengths.sum()
    rows = rng.choice(n, size=sample_size, replace=False, p=probs)
    # Horvitz-Thompson weights for without-replacement draws are
    # approximated by the with-replacement inclusion probabilities,
    # adequate for sample_size << n.
    weights = 1.0 / (probs[rows] * n)
    return rows, weights
