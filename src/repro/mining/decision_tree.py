"""CART-style decision tree with per-point weights.

The classification consumer for biased samples (the paper's future-work
direction): a binary tree over numeric attributes, grown greedily by
weighted Gini impurity. Because every split criterion is computed from
*weighted* class counts, training on an inverse-probability-weighted
biased sample estimates the tree that full-data training would grow —
the same correction K-means uses in section 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import NotFittedError, ParameterError
from repro.utils.validation import check_array, check_random_state

__all__ = [
    "DecisionTreeClassifier",
    "make_classification_dataset",
]


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    prediction: int = 0
    impurity: float = 0.0
    n_weighted: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeClassifier:
    """Binary CART over numeric features, weighted Gini criterion.

    Parameters
    ----------
    max_depth:
        Depth cap (root at depth 0).
    min_samples_leaf:
        Minimum *raw* sample count on each side of a split.
    min_impurity_decrease:
        Minimum weighted impurity improvement to accept a split.

    Examples
    --------
    >>> import numpy as np
    >>> x = np.array([[0.0], [1.0], [2.0], [3.0]])
    >>> y = np.array([0, 0, 1, 1])
    >>> tree = DecisionTreeClassifier(max_depth=2).fit(x, y)
    >>> tree.predict([[0.5], [2.5]]).tolist()
    [0, 1]
    """

    def __init__(
        self,
        max_depth: int = 10,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
    ) -> None:
        if max_depth < 0:
            raise ParameterError(f"max_depth must be >= 0; got {max_depth}.")
        if min_samples_leaf < 1:
            raise ParameterError(
                f"min_samples_leaf must be >= 1; got {min_samples_leaf}."
            )
        if min_impurity_decrease < 0:
            raise ParameterError(
                "min_impurity_decrease must be >= 0; "
                f"got {min_impurity_decrease}."
            )
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.min_impurity_decrease = float(min_impurity_decrease)
        self.root_: _Node | None = None
        self.n_classes_: int | None = None
        self.n_nodes_: int = 0

    # -- training -----------------------------------------------------------

    def fit(self, points, labels, sample_weight=None):
        pts = check_array(points, name="points")
        y = np.asarray(labels, dtype=np.int64)
        if y.shape != (pts.shape[0],):
            raise ParameterError(
                f"labels must have shape ({pts.shape[0]},); got {y.shape}."
            )
        if (y < 0).any():
            raise ParameterError("labels must be non-negative integers.")
        if sample_weight is None:
            weights = np.ones(pts.shape[0])
        else:
            weights = np.asarray(sample_weight, dtype=np.float64)
            if weights.shape != (pts.shape[0],):
                raise ParameterError(
                    f"sample_weight must have shape ({pts.shape[0]},)."
                )
            if (weights < 0).any() or weights.sum() <= 0:
                raise ParameterError(
                    "sample_weight must be non-negative, positive total."
                )
        self.n_classes_ = int(y.max()) + 1
        self.n_nodes_ = 0
        self.root_ = self._grow(pts, y, weights, depth=0)
        return self

    def _grow(self, pts, y, weights, depth: int) -> _Node:
        self.n_nodes_ += 1
        class_mass = np.bincount(y, weights=weights, minlength=self.n_classes_)
        total = class_mass.sum()
        node = _Node(
            prediction=int(class_mass.argmax()),
            impurity=_gini(class_mass),
            n_weighted=float(total),
        )
        if (
            depth >= self.max_depth
            or node.impurity == 0.0
            or pts.shape[0] < 2 * self.min_samples_leaf
        ):
            return node
        split = self._best_split(pts, y, weights, node.impurity, total)
        if split is None:
            return node
        feature, threshold = split
        mask = pts[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(pts[mask], y[mask], weights[mask], depth + 1)
        node.right = self._grow(
            pts[~mask], y[~mask], weights[~mask], depth + 1
        )
        return node

    def _best_split(self, pts, y, weights, parent_impurity, total):
        best_gain = self.min_impurity_decrease
        best: tuple[int, float] | None = None
        n = pts.shape[0]
        one_hot = np.zeros((n, self.n_classes_))
        one_hot[np.arange(n), y] = weights
        for feature in range(pts.shape[1]):
            order = np.argsort(pts[:, feature], kind="stable")
            values = pts[order, feature]
            cum = np.cumsum(one_hot[order], axis=0)
            left_mass = cum[:-1]
            right_mass = cum[-1] - left_mass
            left_total = left_mass.sum(axis=1)
            right_total = right_mass.sum(axis=1)
            # Candidate cut after position i (0-based): only between
            # distinct values, honouring min_samples_leaf on raw counts.
            positions = np.arange(1, n)
            valid = (
                (values[1:] > values[:-1])
                & (positions >= self.min_samples_leaf)
                & (n - positions >= self.min_samples_leaf)
                & (left_total > 0)
                & (right_total > 0)
            )
            if not valid.any():
                continue
            gini_left = 1.0 - (
                (left_mass**2).sum(axis=1) / np.maximum(left_total, 1e-300) ** 2
            )
            gini_right = 1.0 - (
                (right_mass**2).sum(axis=1)
                / np.maximum(right_total, 1e-300) ** 2
            )
            child = (
                left_total * gini_left + right_total * gini_right
            ) / total
            gain = parent_impurity - child
            gain[~valid] = -np.inf
            idx = int(gain.argmax())
            if gain[idx] > best_gain:
                best_gain = float(gain[idx])
                best = (feature, float((values[idx] + values[idx + 1]) / 2.0))
        return best

    # -- inference -----------------------------------------------------------

    def predict(self, points) -> np.ndarray:
        """Predicted class per row."""
        if self.root_ is None:
            raise NotFittedError("DecisionTreeClassifier is not fitted.")
        pts = check_array(points, name="points")
        out = np.empty(pts.shape[0], dtype=np.int64)
        for i, row in enumerate(pts):
            node = self.root_
            while not node.is_leaf:
                node = (
                    node.left if row[node.feature] <= node.threshold
                    else node.right
                )
            out[i] = node.prediction
        return out

    def score(self, points, labels) -> float:
        """Plain accuracy."""
        y = np.asarray(labels, dtype=np.int64)
        return float((self.predict(points) == y).mean())

    def depth(self) -> int:
        """Actual depth of the grown tree."""
        if self.root_ is None:
            raise NotFittedError("DecisionTreeClassifier is not fitted.")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)


def _gini(class_mass: np.ndarray) -> float:
    total = class_mass.sum()
    if total <= 0:
        return 0.0
    fractions = class_mass / total
    return float(1.0 - (fractions**2).sum())


def make_classification_dataset(
    n_points: int = 20_000,
    n_classes: int = 4,
    n_dims: int = 2,
    class_separation: float = 1.0,
    noise_fraction: float = 0.05,
    imbalance: float = 4.0,
    random_state=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian-blob classification data with class imbalance.

    Returns ``(points, labels)``; label noise flips a
    ``noise_fraction`` of labels uniformly. Imbalanced classes make the
    connection to biased sampling interesting: rare classes behave like
    the small sparse clusters of Figure 5.
    """
    if n_classes < 2:
        raise ParameterError(f"n_classes must be >= 2; got {n_classes}.")
    if imbalance < 1.0:
        raise ParameterError(f"imbalance must be >= 1; got {imbalance}.")
    rng = check_random_state(random_state)
    weights = np.logspace(0, np.log10(imbalance), n_classes)
    counts = (n_points * weights / weights.sum()).astype(int)
    counts[-1] += n_points - counts.sum()
    centers = rng.uniform(0.0, class_separation * n_classes, (n_classes, n_dims))
    parts, labels = [], []
    for label, (count, center) in enumerate(zip(counts, centers)):
        parts.append(rng.normal(center, 0.5, size=(int(count), n_dims)))
        labels.append(np.full(int(count), label, dtype=np.int64))
    points = np.vstack(parts)
    y = np.concatenate(labels)
    flip = rng.random(n_points) < noise_fraction
    y[flip] = rng.integers(0, n_classes, size=int(flip.sum()))
    order = rng.permutation(n_points)
    return points[order], y[order]
