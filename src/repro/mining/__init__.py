"""Future-work extensions: sampling for other mining tasks.

The paper's conclusion singles out classification, decision trees and
association rules as tasks that "can potentially benefit both in
construction time and usability by the application of similar biased
sampling techniques". This subpackage builds those consumers:

* Apriori frequent-itemset mining plus Toivonen's sampling scheme
  (VLDB 1996, cited as [28]) with its negative-border certificate;
* a CART-style decision tree that accepts per-point weights, so it can
  train on inverse-probability-weighted biased samples.
"""

from repro.mining.transactions import (
    TransactionDataset,
    make_transaction_dataset,
)
from repro.mining.apriori import Rule, apriori, association_rules
from repro.mining.sampled_apriori import SampledAprioriResult, sampled_apriori
from repro.mining.decision_tree import (
    DecisionTreeClassifier,
    make_classification_dataset,
)

__all__ = [
    "TransactionDataset",
    "make_transaction_dataset",
    "apriori",
    "association_rules",
    "Rule",
    "sampled_apriori",
    "SampledAprioriResult",
    "DecisionTreeClassifier",
    "make_classification_dataset",
]
