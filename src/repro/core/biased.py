"""Density-biased sampling (Figure 1 of the paper).

Given a density estimator ``f`` for a dataset ``D`` of ``n`` points, a
tuning exponent ``a`` and a target expected sample size ``b``, define
``f'(x) = f(x)^a`` and ``k = sum_{x in D} f'(x)``. Each point enters the
sample independently with probability

``P(x in sample) = min(1, (b / k) * f'(x))``

which satisfies the paper's two properties: the inclusion probability is
a function of the local density only, and the expected sample size is
``b`` (exactly ``b`` when no probability needs clipping at one).

The exponent steers the bias (section 2.2):

* ``a = 0``   — uniform sampling;
* ``a > 0``   — dense regions oversampled (cluster detection under noise);
* ``-1 < a < 0`` — sparse regions oversampled while relative densities are
  preserved with high probability (Lemma 1) — small-cluster detection;
* ``a = -1``  — equal expected sample mass per unit volume;
* ``a < -1``  — sparse regions dominate (outlier hunting).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from numpy.typing import ArrayLike

from repro.density.backends import make_density_estimator
from repro.density.base import DensityEstimator
from repro.exceptions import DataValidationError, ParameterError
from repro.obs import get_recorder
from repro.parallel import parallel_map_chunks
from repro.sharding import (
    ShardPlan,
    eval_shards,
    resolve_shards,
    sharded_gather,
)
from repro.utils.streams import DataStream, as_stream
from repro.utils.validation import (
    RandomStateLike,
    check_positive,
    check_random_state,
)

__all__ = [
    "BiasedSample",
    "DensityBiasedSampler",
]


@dataclass(frozen=True)
class BiasedSample:
    """Result of a sampling pass.

    Attributes
    ----------
    points:
        The sampled rows, shape ``(s, d)``.
    indices:
        Row indices of the sampled points in the source dataset.
    probabilities:
        Inclusion probability of each *sampled* point (used to build
        inverse-probability weights for weighted K-means, section 3.1).
    exponent:
        The ``a`` used (``0.0`` for uniform sampling).
    expected_size:
        The expected sample size implied by the probability assignment
        (equals the requested ``b`` unless clipping at 1 intervened).
    n_source:
        Size of the dataset that was sampled.
    densities:
        Estimated density at each sampled point (empty for uniform
        sampling, where no estimator is involved).
    """

    points: np.ndarray
    indices: np.ndarray
    probabilities: np.ndarray
    exponent: float
    expected_size: float
    n_source: int
    densities: np.ndarray = field(default_factory=lambda: np.empty(0))

    def __len__(self) -> int:
        return self.points.shape[0]

    @property
    def weights(self) -> np.ndarray:
        """Inverse-probability weights (Horvitz-Thompson) for the sample.

        Weighting each sampled point by ``1/P(selected)`` makes weighted
        statistics over the sample unbiased for the corresponding
        statistics over the full dataset — the correction the paper
        prescribes before running K-means/K-medoids on a biased sample.
        """
        return 1.0 / self.probabilities

    @property
    def sampling_fraction(self) -> float:
        """Achieved sample size over source size."""
        if self.n_source == 0:
            return 0.0
        return len(self) / self.n_source


class DensityBiasedSampler:
    """Two-pass density-biased sampler (the paper's Figure 1 algorithm).

    Dataset passes: 3 — one ``fit_density`` scan (when the estimator
    arrives unfitted), one ``eval_density`` scan to compute the exact
    normaliser, and one ``draw`` scan for the Bernoulli draws.

    Memory: O(n) — the exact-normaliser design keeps every point's
    density for the draw scan; see :class:`OnePassBiasedSampler` for
    the O(b + chunk) streaming variant.

    Parameters
    ----------
    sample_size:
        Target *expected* sample size ``b``.
    exponent:
        The bias exponent ``a``.
    estimator:
        A (fitted or unfitted) :class:`DensityEstimator`. Defaults to the
        paper's recommendation: a 1000-kernel Epanechnikov KDE. An
        unfitted estimator is fitted in the first dataset pass.
    density_floor_fraction:
        For ``a < 0``, densities are floored at this fraction of the
        mean density before raising to the negative power. The floor
        bounds how much the emptiest space can be boosted: a point in a
        zero-density region gets at most ``floor**a`` times the weight
        of an average-density point (about 4.5x at the default 0.05 and
        ``a = -0.5``). Compact-support kernels assign *exactly* zero to
        most deep-noise points — especially in higher dimensions — so a
        near-zero floor would hand the entire sample to background
        noise; lower it deliberately (e.g. ``1e-6``) when hunting
        isolated points rather than sparse clusters.
    exact_size:
        When true, draw *exactly* ``sample_size`` points without
        replacement with probability proportional to ``f^a`` instead of
        the faithful independent-Bernoulli scheme.
    random_state:
        Seed/generator for the Bernoulli draws (and the default
        estimator's reservoir).
    n_jobs:
        Worker count for the density-evaluation pass (``None`` defers
        to the ambient default / ``REPRO_N_JOBS``; see
        :mod:`repro.parallel`). All random draws stay on the single
        main-process generator, so results are byte-identical for any
        value.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(7)
    >>> dense = rng.normal(0.0, 0.05, size=(2000, 2))
    >>> sparse = rng.uniform(-1.0, 1.0, size=(2000, 2))
    >>> data = np.vstack([dense, sparse])
    >>> sampler = DensityBiasedSampler(sample_size=400, exponent=1.0,
    ...                                random_state=0)
    >>> sample = sampler.sample(data)
    >>> bool((sample.indices < 2000).mean() > 0.6)  # dense oversampled
    True
    """

    #: Per-phase dataset scans of sample() (audited statically by RA001).
    __n_passes__ = {"fit_density": 1, "eval_density": 1, "draw": 1}

    #: Per-phase peak-allocation bounds of sample() (audited by RA005).
    __space__ = {
        "fit_density": "O(m)",
        "eval_density": "O(n)",
        "draw": "O(n)",
    }

    def __init__(
        self,
        sample_size: int = 1000,
        exponent: float = 1.0,
        estimator: DensityEstimator | None = None,
        density_floor_fraction: float = 0.05,
        exact_size: bool = False,
        random_state: RandomStateLike = None,
        n_jobs: int | None = None,
    ) -> None:
        if sample_size < 1:
            raise ParameterError(f"sample_size must be >= 1; got {sample_size}.")
        self.sample_size = int(sample_size)
        self.exponent = float(exponent)
        self.estimator = estimator
        self.density_floor_fraction = check_positive(
            density_floor_fraction, name="density_floor_fraction"
        )
        self.exact_size = bool(exact_size)
        self.random_state = random_state
        self.n_jobs = n_jobs
        # Populated by sample() for inspection / tests.
        self.estimator_: DensityEstimator | None = None
        self.normalizer_: float | None = None
        self.probabilities_: np.ndarray | None = None

    # -- pipeline ----------------------------------------------------------------

    def sample(
        self, data: ArrayLike | None = None, *, stream: DataStream | None = None
    ) -> BiasedSample:
        """Draw a density-biased sample from ``data``.

        Performs (at most) three sequential dataset passes: estimator
        fit, density evaluation / normaliser computation, and the
        Bernoulli sampling pass.
        """
        source = stream if stream is not None else as_stream(data)
        rng = check_random_state(self.random_state)
        recorder = get_recorder()

        with recorder.phase("fit_density"):
            estimator = self._resolve_estimator(source, rng)
        with recorder.phase("eval_density"):
            densities = self._dataset_densities(source, estimator)
            probabilities = self.compute_probabilities(densities)
        self.probabilities_ = probabilities

        with recorder.phase("draw"):
            if self.exact_size:
                result = self._draw_exact(source, densities, probabilities, rng)
            else:
                result = self._draw_bernoulli(
                    source, densities, probabilities, rng
                )
        recorder.count("sample_size", len(result))
        return result

    def _resolve_estimator(
        self, source: DataStream, rng: np.random.Generator
    ) -> DensityEstimator:
        estimator = self.estimator
        if estimator is None:
            estimator = make_density_estimator(budget=1000, random_state=rng)
        if getattr(estimator, "n_points_", None) is None:
            estimator.fit(stream=source)
        self.estimator_ = estimator
        return estimator

    def _dataset_densities(
        self, source: DataStream, estimator: DensityEstimator
    ) -> np.ndarray:
        """Pass 2: density of every dataset point, in stream order.

        Chunks fan out to the parallel backend; evaluation is
        deterministic per chunk and the merge preserves stream order,
        so the result is byte-identical for any ``n_jobs``. With an
        ambient shard count above one the same pass runs as a shard
        fan-out instead — also byte-identical (DESIGN.md §13).
        """
        n_shards = resolve_shards(None)
        if n_shards > 1 and hasattr(source, "chunk_sizes"):
            return self._densities_sharded(source, estimator, n_shards)
        else:
            densities = np.empty(len(source))
            offsets_chunks = list(source.iter_with_offsets())
            covered = sum(chunk.shape[0] for _, chunk in offsets_chunks)
            if covered != len(source):
                raise DataValidationError(
                    f"stream yielded {covered} rows in the density pass but "
                    f"advertises n_points={len(source)}; offset-keyed "
                    "buffers would be misaligned (a hardened stream must "
                    "deliver its exact surviving-row count every pass)."
                )
            values = parallel_map_chunks(
                estimator.evaluate,
                [chunk for _, chunk in offsets_chunks],
                n_jobs=self.n_jobs,
            )
            for (start, chunk), chunk_values in zip(offsets_chunks, values):
                densities[start : start + chunk.shape[0]] = chunk_values
            return densities

    def _densities_sharded(
        self, source: DataStream, estimator: DensityEstimator, n_shards: int
    ) -> np.ndarray:
        """Pass 2 as a shard fan-out, byte-identical to the serial pass.

        Each shard evaluates its own chunk range; the folded slices
        fill the same preallocated per-point array the serial pass
        fills, so the normaliser and every probability derived from it
        are exact.
        """
        plan = ShardPlan(source, n_shards)
        shard = eval_shards(plan, estimator.evaluate, n_jobs=self.n_jobs)
        if shard.row_start != 0 or shard.seen != len(source):
            raise DataValidationError(
                f"stream yielded {shard.seen} rows in the density pass but "
                f"advertises n_points={len(source)}; offset-keyed buffers "
                "would be misaligned (a hardened stream must deliver its "
                "exact surviving-row count every pass)."
            )
        densities = np.empty(len(source))
        shard.fill(densities)
        return densities

    def compute_probabilities(self, densities: np.ndarray) -> np.ndarray:
        """Per-point inclusion probabilities from raw density values.

        Implements ``min(1, (b/k) * f^a)`` with the negative-exponent
        density floor. Exposed publicly so diagnostics and the
        theoretical tests can inspect the probability assignment.
        """
        biased = self._biased_weights(densities)
        k = biased.sum()
        self.normalizer_ = float(k)
        if k <= 0:
            raise ParameterError(
                "density-biased weights sum to zero; the estimator assigns "
                "zero density everywhere (check bandwidths / exponent)."
            )
        return np.minimum(1.0, (self.sample_size / k) * biased)

    def _biased_weights(self, densities: np.ndarray) -> np.ndarray:
        """``f'(x) = f(x)^a``, floored for negative exponents."""
        a = self.exponent
        if a == 0.0:
            return np.ones_like(densities)
        if a > 0:
            return densities**a
        floor = self.density_floor_fraction * max(densities.mean(), 1e-300)
        return np.maximum(densities, floor) ** a

    # -- draws -------------------------------------------------------------------

    def _draw_bernoulli(
        self,
        source: DataStream,
        densities: np.ndarray,
        probabilities: np.ndarray,
        rng: np.random.Generator,
    ) -> BiasedSample:
        """Pass 3: independent coin per point (the paper's scheme)."""
        selected = rng.random(len(source)) < probabilities
        points = self._gather(source, selected)
        indices = np.nonzero(selected)[0]
        return BiasedSample(
            points=points,
            indices=indices,
            probabilities=probabilities[selected],
            exponent=self.exponent,
            expected_size=float(probabilities.sum()),
            n_source=len(source),
            densities=densities[selected],
        )

    def _draw_exact(
        self,
        source: DataStream,
        densities: np.ndarray,
        probabilities: np.ndarray,
        rng: np.random.Generator,
    ) -> BiasedSample:
        """Exactly ``sample_size`` points, proportional to ``f^a``."""
        weights = self._biased_weights(densities)
        total = weights.sum()
        size = min(self.sample_size, len(source))
        indices = rng.choice(
            len(source), size=size, replace=False, p=weights / total
        )
        indices.sort()
        mask = np.zeros(len(source), dtype=bool)
        mask[indices] = True
        points = self._gather(source, mask)
        return BiasedSample(
            points=points,
            indices=indices,
            probabilities=probabilities[indices],
            exponent=self.exponent,
            expected_size=float(size),
            n_source=len(source),
            densities=densities[indices],
        )

    @staticmethod
    def _gather(source: DataStream, mask: np.ndarray) -> np.ndarray:
        """Collect the masked rows in one sequential pass."""
        if resolve_shards(None) > 1 and hasattr(source, "chunk_sizes"):
            return sharded_gather(source, mask)
        else:
            parts = []
            seen = 0
            for start, chunk in source.iter_with_offsets():
                local = mask[start : start + chunk.shape[0]]
                seen += chunk.shape[0]
                if local.any():
                    parts.append(chunk[local])
            if seen != mask.shape[0]:
                raise DataValidationError(
                    f"stream yielded {seen} rows in the gather pass but the "
                    f"selection mask covers {mask.shape[0]}; passes disagree "
                    "on the surviving-row count."
                )
            if not parts:
                return np.empty((0, source.n_dims))
            return np.vstack(parts)
