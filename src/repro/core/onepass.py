"""Integrated one-pass biased sampling.

Section 2.2 of the paper remarks that the normaliser computation and the
sampling pass "can be integrated in one, thus deriving the biased sample
in a single pass over the database. In this case however we only compute
an approximation of the sampling probability."

This module implements that variant: the normaliser ``k = sum f(x)^a`` is
*estimated up front* from the density estimator's own kernel centers
(a uniform sample of the dataset), and points are then accepted during a
single scan using the estimated ``k``. The achieved sample size deviates
from ``b`` by the relative error of the ``k`` estimate; the ablation
benchmark quantifies the trade-off against the exact two-pass scheme.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

from repro.core.biased import BiasedSample, DensityBiasedSampler
from repro.density.base import DensityEstimator
from repro.density.reservoir import reservoir_sample
from repro.exceptions import DataValidationError, ParameterError
from repro.obs import get_recorder
from repro.parallel import parallel_map_chunks
from repro.utils.streams import DataStream, as_stream
from repro.utils.validation import RandomStateLike, check_random_state

__all__ = ["OnePassBiasedSampler"]

#: Chunks buffered per parallel fan-out in the draw scan. Bounds the
#: draw phase's working set at O(chunk) while still amortising dispatch
#: overhead across several chunks per round trip.
_DRAW_WINDOW_CHUNKS = 8


class OnePassBiasedSampler(DensityBiasedSampler):
    """Single sampling pass with an estimated normaliser.

    Dataset passes: 3 — ``fit_density``, ``estimate_normalizer`` and
    ``draw`` each scan at most once (the normaliser scan is skipped
    entirely when a kernel estimator's centers can be reused as the
    pilot, which is the paper's one-pass configuration).

    Memory: O(b + chunk) — the draw scan buffers at most
    ``_DRAW_WINDOW_CHUNKS`` chunks per parallel fan-out and keeps only
    the accepted rows (expected ``b`` of them); the stream itself is
    never materialised.

    Parameters are those of :class:`DensityBiasedSampler` plus:

    pilot_size:
        Number of uniformly sampled points used to estimate
        ``k = sum f(x)^a`` (when the estimator is a
        :class:`KernelDensityEstimator` its own centers are reused and no
        extra data is read).
    """

    #: Per-phase scan ceilings of sample() (audited statically by RA001).
    __n_passes__ = {"fit_density": 1, "estimate_normalizer": 1, "draw": 1}

    #: Per-phase peak-allocation bounds of sample() (audited by RA005).
    #: ``draw_window`` is the draw scan's traced sub-phase: each fan-out
    #: carries the estimator's O(m) state into its workers.
    __space__ = {
        "fit_density": "O(m)",
        "estimate_normalizer": "O(b + m)",
        "draw": "O(b + chunk)",
        "draw_window": "O(m)",
    }

    def __init__(
        self,
        sample_size: int = 1000,
        exponent: float = 1.0,
        estimator: DensityEstimator | None = None,
        density_floor_fraction: float = 0.05,
        pilot_size: int = 1000,
        random_state: RandomStateLike = None,
        n_jobs: int | None = None,
    ) -> None:
        super().__init__(
            sample_size=sample_size,
            exponent=exponent,
            estimator=estimator,
            density_floor_fraction=density_floor_fraction,
            exact_size=False,
            random_state=random_state,
            n_jobs=n_jobs,
        )
        if pilot_size < 1:
            raise ParameterError(f"pilot_size must be >= 1; got {pilot_size}.")
        self.pilot_size = int(pilot_size)

    def sample(
        self, data: ArrayLike | None = None, *, stream: DataStream | None = None
    ) -> BiasedSample:
        """Draw the sample with one scan after the estimator fit."""
        source = stream if stream is not None else as_stream(data)
        rng = check_random_state(self.random_state)
        recorder = get_recorder()
        with recorder.phase("fit_density"):
            estimator = self._resolve_estimator(source, rng)
        with recorder.phase("estimate_normalizer"):
            k_hat, floor = self._estimate_normalizer(source, estimator, rng)
        self.normalizer_ = k_hat

        sampled_points: list[np.ndarray] = []
        sampled_idx: list[np.ndarray] = []
        sampled_probs: list[np.ndarray] = []
        sampled_dens: list[np.ndarray] = []
        expected = 0.0
        scale = self.sample_size / k_hat
        out = (sampled_points, sampled_idx, sampled_probs, sampled_dens)
        with recorder.phase("draw"):
            # Fan the deterministic density evaluations out to workers a
            # bounded window of chunks at a time, so the scan never
            # materialises the stream (RA005: draw stays O(b + chunk)).
            # The Bernoulli draws stay on the single main-process
            # generator, consumed in stream order, so the sample is
            # byte-identical for any n_jobs and any window size.
            window: list[tuple[int, np.ndarray]] = []
            covered = 0
            for start, chunk in source.iter_with_offsets():
                covered += chunk.shape[0]
                window.append((start, chunk))
                if len(window) >= _DRAW_WINDOW_CHUNKS:
                    expected += self._draw_window(
                        window, estimator, rng, floor, scale, out
                    )
                    window.clear()
            if window:
                expected += self._draw_window(
                    window, estimator, rng, floor, scale, out
                )
                window.clear()
            if covered != len(source):
                raise DataValidationError(
                    f"stream yielded {covered} rows in the draw scan but "
                    f"advertises n_points={len(source)}; sample indices "
                    "would not address the surviving rows."
                )

        if sampled_points:
            points = np.vstack(sampled_points)
            indices = np.concatenate(sampled_idx)
            probabilities = np.concatenate(sampled_probs)
            densities = np.concatenate(sampled_dens)
        else:
            points = np.empty((0, source.n_dims))
            indices = np.empty(0, dtype=np.int64)
            probabilities = np.empty(0)
            densities = np.empty(0)
        recorder.count("sample_size", indices.shape[0])
        return BiasedSample(
            points=points,
            indices=indices,
            probabilities=probabilities,
            exponent=self.exponent,
            expected_size=expected,
            n_source=len(source),
            densities=densities,
        )

    def _draw_window(
        self,
        window: list[tuple[int, np.ndarray]],
        estimator: DensityEstimator,
        rng: np.random.Generator,
        floor: float,
        scale: float,
        out: tuple[
            list[np.ndarray],
            list[np.ndarray],
            list[np.ndarray],
            list[np.ndarray],
        ],
    ) -> float:
        """Accept/reject one buffered window; returns its expected mass."""
        sampled_points, sampled_idx, sampled_probs, sampled_dens = out
        recorder = get_recorder()
        with recorder.phase("draw_window") as span:
            window_densities = parallel_map_chunks(
                estimator.evaluate,
                [chunk for _, chunk in window],
                n_jobs=self.n_jobs,
            )
            expected = 0.0
            rows = 0
            accepted = 0
            for (start, chunk), densities in zip(window, window_densities):
                rows += int(chunk.shape[0])
                weights = self._floored_power(densities, floor)
                probs = np.minimum(1.0, scale * weights)
                expected += float(probs.sum())
                keep = rng.random(chunk.shape[0]) < probs
                if keep.any():
                    accepted += int(keep.sum())
                    sampled_points.append(chunk[keep])
                    sampled_idx.append(start + np.nonzero(keep)[0])
                    sampled_probs.append(probs[keep])
                    sampled_dens.append(densities[keep])
            span.set(chunks=len(window), rows=rows, accepted=accepted)
        if accepted:
            recorder.observe("draw_batch_rows", accepted)
        return expected

    # -- normaliser estimation ---------------------------------------------------

    def _estimate_normalizer(
        self,
        source: DataStream,
        estimator: DensityEstimator,
        rng: np.random.Generator,
    ) -> tuple[float, float]:
        """Estimate ``k`` and the negative-exponent floor from a pilot.

        ``k = n * E[f(X)^a]`` for ``X`` uniform over the dataset, so the
        pilot mean of ``f^a`` times ``n`` is an unbiased estimate.

        When the pilot points are the estimator's own kernel centers,
        each pilot density includes the point's *own* kernel — a
        ``(n/m) * prod_j K(0)/h_j`` spike that a uniformly drawn point
        would almost surely not sit on. Left in, it inflates every
        pilot density, biases ``k_hat`` up and undershoots the target
        sample size; it is subtracted here (leave-one-out correction).
        """
        pilot, pilot_is_centers = self._pilot_points(source, estimator, rng)
        densities = estimator.evaluate(pilot)
        if pilot_is_centers:
            densities = np.maximum(
                densities - _self_kernel_density(estimator), 0.0
            )
        floor = 0.0
        if self.exponent < 0:
            floor = self.density_floor_fraction * max(densities.mean(), 1e-300)
        weights = self._floored_power(densities, floor)
        k_hat = float(len(source) * weights.mean())
        if k_hat <= 0:
            raise ParameterError(
                "estimated normaliser is zero; pilot densities are all zero."
            )
        return k_hat, floor

    def _pilot_points(
        self,
        source: DataStream,
        estimator: DensityEstimator,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, bool]:
        """The pilot sample, plus whether it is the estimator's centers."""
        centers = getattr(estimator, "centers_", None)
        if centers is not None and centers.shape[0] >= 2:
            return centers, True
        # Non-kernel estimator: spend one extra pass on a pilot sample.
        return (
            reservoir_sample(None, self.pilot_size, rng, stream=source),
            False,
        )

    def _floored_power(self, densities: np.ndarray, floor: float) -> np.ndarray:
        a = self.exponent
        if a == 0.0:
            return np.ones_like(densities)
        if a > 0:
            return densities**a
        return np.maximum(densities, max(floor, 1e-300)) ** a


def _self_kernel_density(estimator: DensityEstimator) -> float:
    """A kernel center's own contribution to its density estimate.

    For a product-kernel estimator with ``m`` centers over ``n`` points,
    the fitted density at center ``c_i`` includes the term contributed
    by kernel ``i`` itself: ``(n/m) * prod_j K(0)/h_j``. Estimators
    without per-attribute bandwidths get no correction (returns 0).
    """
    kernel = getattr(estimator, "kernel", None)
    bandwidths = getattr(estimator, "bandwidths_", None)
    centers = getattr(estimator, "centers_", None)
    if kernel is None or bandwidths is None or centers is None:
        return 0.0
    k0 = float(kernel.profile(np.zeros(1))[0])
    return float(
        (estimator.n_points_ / centers.shape[0])
        * np.prod(k0 / np.asarray(bandwidths, dtype=np.float64))
    )
