"""Uniform random sampling baselines.

The paper's comparison point (section 4.2): read the dataset size ``N``
first, then scan once and keep each point with probability ``b/N`` —
expected sample size ``b``. An exact-size reservoir variant is also
provided for callers that need a hard budget.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

from repro.core.biased import BiasedSample
from repro.exceptions import DataValidationError, ParameterError
from repro.obs import get_recorder
from repro.sharding import resolve_shards, sharded_gather
from repro.utils.streams import DataStream, as_stream
from repro.utils.validation import RandomStateLike, check_random_state

__all__ = ["UniformSampler"]


class UniformSampler:
    """Uniform (unbiased) random sampling.

    Dataset passes: 1 — both the Bernoulli and the reservoir mode draw
    in a single scan.

    Memory: O(n) — exact-size mode draws the kept index set against
    ``len(source)`` up front; the reservoir path alone is O(b).

    Parameters
    ----------
    sample_size:
        Expected (Bernoulli mode) or exact (reservoir mode) size ``b``.
    exact_size:
        When true, use reservoir sampling to return exactly
        ``sample_size`` rows in one pass.
    random_state:
        Seed or generator for the draws.
    """

    #: Per-phase dataset scans of sample() (audited statically by RA001).
    __n_passes__ = {"draw": 1}

    #: Peak working-memory bound of sample() (audited by RA005).
    __space__ = "O(n)"

    def __init__(
        self,
        sample_size: int = 1000,
        exact_size: bool = False,
        random_state: RandomStateLike = None,
    ) -> None:
        if sample_size < 1:
            raise ParameterError(f"sample_size must be >= 1; got {sample_size}.")
        self.sample_size = int(sample_size)
        self.exact_size = bool(exact_size)
        self.random_state = random_state

    def sample(
        self, data: ArrayLike | None = None, *, stream: DataStream | None = None
    ) -> BiasedSample:
        """Draw a uniform sample; returns the same result type as the
        biased sampler so downstream code is sampler-agnostic."""
        source = stream if stream is not None else as_stream(data)
        rng = check_random_state(self.random_state)
        recorder = get_recorder()
        n = len(source)
        # Clipped inclusion probability: with b > n every point is kept
        # (probability 1), so at most n points can ever be drawn and the
        # expected size is n * min(1, b/n), not b.
        prob = min(1.0, self.sample_size / n)
        if self.exact_size:
            indices = rng.choice(n, size=min(self.sample_size, n), replace=False)
            indices.sort()
        else:
            indices = np.nonzero(rng.random(n) < prob)[0]
        mask = np.zeros(n, dtype=bool)
        mask[indices] = True
        with recorder.phase("draw"):
            if resolve_shards(None) > 1 and hasattr(source, "chunk_sizes"):
                points = sharded_gather(source, mask)
            else:
                parts = []
                seen = 0
                for start, chunk in source.iter_with_offsets():
                    local = mask[start : start + chunk.shape[0]]
                    seen += chunk.shape[0]
                    if local.any():
                        parts.append(chunk[local])
                if seen != n:
                    raise DataValidationError(
                        f"stream yielded {seen} rows in the draw pass but "
                        f"advertises n_points={n}; the selection mask would "
                        "be misaligned with the surviving rows."
                    )
                points = (
                    np.vstack(parts)
                    if parts
                    else np.empty((0, source.n_dims))
                )
        recorder.count("sample_size", indices.shape[0])
        return BiasedSample(
            points=points,
            indices=indices,
            probabilities=np.full(indices.shape[0], prob),
            exponent=0.0,
            expected_size=float(n * prob),
            n_source=n,
        )
