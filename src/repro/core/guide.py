"""The paper's Practitioner's Guide (section 4.4), as a function.

The experimental evaluation distils into four rules:

* noisy datasets → ``a = 1`` reliably finds the dense clusters;
* clean datasets with small/sparse clusters → ``a = -0.5`` (and between
  the two, scale ``a`` toward 0 as noise grows);
* 1000 kernels estimate the density accurately across workloads;
* a sample of ~1% of the dataset balances accuracy and cost.

:func:`recommend_settings` encodes those rules so application code can
ask for a configured sampler instead of memorising the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.exceptions import ParameterError
from repro.utils.validation import RandomStateLike

if TYPE_CHECKING:  # avoid the circular import at runtime
    from repro.core.biased import DensityBiasedSampler

__all__ = [
    "TASKS",
    "SamplerRecommendation",
    "recommend_settings",
]

TASKS = ("dense-clusters", "small-clusters", "outliers", "coverage")


@dataclass(frozen=True)
class SamplerRecommendation:
    """A practitioner's-guide configuration.

    Attributes
    ----------
    exponent:
        The bias exponent ``a``.
    n_kernels:
        Density-estimator budget.
    sample_fraction:
        Recommended expected sample size as a fraction of the data.
    density_floor_fraction:
        The empty-space floor (lowered for outlier hunting).
    rationale:
        The paper-backed reason for the choice.
    """

    exponent: float
    n_kernels: int
    sample_fraction: float
    density_floor_fraction: float
    rationale: str

    def make_sampler(
        self, n_points: int, random_state: RandomStateLike = None
    ) -> DensityBiasedSampler:
        """Instantiate a :class:`~repro.core.DensityBiasedSampler`.

        The estimator family honours the ambient density backend
        (:func:`repro.density.backends.use_density_backend` /
        ``REPRO_DENSITY_BACKEND``); the guide's ``n_kernels`` budget
        applies to backends measured in kernel centers.
        """
        from repro.core.biased import DensityBiasedSampler
        from repro.density.backends import make_density_estimator

        sample_size = max(1, int(self.sample_fraction * n_points))
        estimator = make_density_estimator(
            budget=self.n_kernels, random_state=random_state
        )
        return DensityBiasedSampler(
            sample_size=sample_size,
            exponent=self.exponent,
            estimator=estimator,
            density_floor_fraction=self.density_floor_fraction,
            random_state=random_state,
        )


def recommend_settings(
    task: str = "dense-clusters",
    noise_level: float = 0.0,
) -> SamplerRecommendation:
    """Settings per section 4.4 of the paper.

    Parameters
    ----------
    task:
        ``"dense-clusters"`` — find the main clusters, robust to noise;
        ``"small-clusters"`` — recover small/sparse clusters next to
        dominant ones; ``"outliers"`` — hunt isolated points;
        ``"coverage"`` — equal expected sample mass per unit volume.
    noise_level:
        Expected noise fraction in [0, 1]; interpolates the
        small-cluster exponent toward 0 as the paper advises ("the
        lower the overall level of noise, the smaller the value of a").

    Examples
    --------
    >>> rec = recommend_settings("dense-clusters", noise_level=0.5)
    >>> rec.exponent
    1.0
    >>> recommend_settings("small-clusters", noise_level=0.0).exponent
    -0.5
    >>> recommend_settings("small-clusters", noise_level=0.2).exponent
    -0.25
    """
    if task not in TASKS:
        raise ParameterError(f"task must be one of {TASKS}; got {task!r}.")
    if not 0.0 <= noise_level <= 1.0:
        raise ParameterError(
            f"noise_level must be in [0, 1]; got {noise_level}."
        )
    if task == "dense-clusters":
        return SamplerRecommendation(
            exponent=1.0,
            n_kernels=1000,
            sample_fraction=0.01,
            density_floor_fraction=0.05,
            rationale="for noisy datasets, a=1 allows reliable detection "
            "of dense clusters (paper section 4.4, first rule)",
        )
    if task == "small-clusters":
        # a = -0.5 with no noise, easing linearly to -0.25 by 20% noise
        # and toward 0 beyond (the paper's fig 5(a) vs 5(b) reading).
        exponent = min(-0.5 + 1.25 * noise_level, -0.1)
        return SamplerRecommendation(
            exponent=round(exponent, 3),
            n_kernels=1000,
            sample_fraction=0.01,
            density_floor_fraction=0.05,
            rationale="without noise a=-0.5 detects very small/sparse "
            "clusters; more noise calls for a closer to 0 (section 4.3, "
            "clusters with variable densities)",
        )
    if task == "outliers":
        return SamplerRecommendation(
            exponent=-1.5,
            n_kernels=1000,
            sample_fraction=0.01,
            density_floor_fraction=1e-6,
            rationale="sampling the very sparse regions surfaces likely "
            "DB outliers; the low floor lets empty space dominate "
            "(section 1/3.2 — prefer ApproximateOutlierDetector for "
            "exact DB(p,k) semantics)",
        )
    return SamplerRecommendation(
        exponent=-1.0,
        n_kernels=1000,
        sample_fraction=0.01,
        density_floor_fraction=0.05,
        rationale="a=-1 gives the same expected number of sample points "
        "in any two regions of equal volume (section 2.2, case 4)",
    )
