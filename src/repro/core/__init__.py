"""The paper's primary contribution: density-biased sampling.

``DensityBiasedSampler`` implements the algorithm of Figure 1 of the
paper: fit a density estimator in one pass, compute the normaliser
``k = sum f(x)^a`` in a second pass, and draw each point into the sample
with probability ``(b/k) * f(x)^a`` in a third. ``OnePassBiasedSampler``
merges the last two passes at the cost of an approximate normaliser
(the integration sketched at the end of section 2.2).
"""

from repro.core.biased import BiasedSample, DensityBiasedSampler
from repro.core.onepass import OnePassBiasedSampler
from repro.core.uniform import UniformSampler
from repro.core.weights import effective_sample_size, inverse_probability_weights
from repro.core.guide import SamplerRecommendation, recommend_settings
from repro.core import theory

__all__ = [
    "BiasedSample",
    "DensityBiasedSampler",
    "OnePassBiasedSampler",
    "UniformSampler",
    "inverse_probability_weights",
    "effective_sample_size",
    "recommend_settings",
    "SamplerRecommendation",
    "theory",
]
