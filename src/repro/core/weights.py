"""Inverse-probability weighting for biased samples.

Section 3.1: K-means / K-medoids optimise a criterion that weights every
dataset point equally, so when they run on a *biased* sample "we have to
weight the sample points with the inverse of the probability that each
was sampled". These helpers implement that correction and the standard
effective-sample-size diagnostic for the resulting weight distribution.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

from repro.exceptions import ParameterError

__all__ = [
    "inverse_probability_weights",
    "effective_sample_size",
]


def inverse_probability_weights(probabilities: ArrayLike) -> np.ndarray:
    """Horvitz-Thompson weights ``w_i = 1 / P(i sampled)``.

    >>> inverse_probability_weights([0.5, 0.25]).tolist()
    [2.0, 4.0]
    """
    probs = np.asarray(probabilities, dtype=np.float64)
    if probs.size == 0:
        raise ParameterError(
            "inverse_probability_weights: probabilities is empty; "
            "an empty sample has no Horvitz-Thompson weights."
        )
    if (probs <= 0).any():
        raise ParameterError(
            "inverse_probability_weights: inclusion probabilities must "
            "be > 0 (a zero probability has an infinite weight)."
        )
    if (probs > 1).any():
        raise ParameterError(
            "inverse_probability_weights: inclusion probabilities must "
            "be <= 1."
        )
    return 1.0 / probs


def effective_sample_size(weights: ArrayLike) -> float:
    """Kish effective sample size ``(sum w)^2 / sum w^2``.

    Equals the sample size for uniform weights and shrinks as the weight
    distribution becomes more skewed; a quick check of how much
    statistical power a strongly biased sample retains for weighted
    estimators.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.size == 0:
        raise ParameterError(
            "effective_sample_size: weights is empty; the Kish ratio "
            "0/0 is undefined for an empty sample."
        )
    if (w < 0).any():
        raise ParameterError(
            "effective_sample_size: weights must be non-negative."
        )
    total_sq = w.sum() ** 2
    sq_total = (w**2).sum()
    if sq_total == 0:
        raise ParameterError(
            "effective_sample_size: all weights are zero; the Kish "
            "ratio 0/0 is undefined."
        )
    return float(total_sq / sq_total)


