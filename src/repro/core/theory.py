"""Sample-size theory from section 2 of the paper.

Two results are implemented:

* the Guha et al. (CURE) lower bound on the *uniform* sample size needed
  to capture a fraction ``eta`` of a cluster with probability ``1-delta``
  (the paper's motivating "25% of the dataset" example), and
* Theorem 1's biased-sampling counterpart under rule R, which devotes a
  fraction ``p`` of the expected sample to the cluster: the biased sample
  is smaller than the uniform one **iff** ``p >= |u| / n``.

Exact (non-asymptotic) inclusion probabilities via the binomial tail are
also provided so the benchmarks can cross-check the Chernoff-style bounds
against Monte-Carlo simulation.
"""

from __future__ import annotations

import math

from scipy import stats

from repro.exceptions import ParameterError

__all__ = [
    "uniform_sample_size",
    "required_inclusion_probability",
    "biased_sample_size",
    "rule_r_probabilities",
    "cluster_inclusion_probability",
    "theorem1_holds",
]


def _check_common(n: int, cluster_size: int, eta: float, delta: float) -> None:
    if n < 1:
        raise ParameterError(f"n must be >= 1; got {n}.")
    if not 1 <= cluster_size <= n:
        raise ParameterError(
            f"cluster_size must be in [1, n={n}]; got {cluster_size}."
        )
    if not 0.0 <= eta <= 1.0:
        raise ParameterError(f"eta must be in [0, 1]; got {eta}.")
    if not 0.0 < delta <= 1.0:
        raise ParameterError(f"delta must be in (0, 1]; got {delta}.")


def uniform_sample_size(
    n: int, cluster_size: int, eta: float, delta: float
) -> float:
    """Guha et al.'s uniform-sampling size bound.

    The sample size ``s`` that guarantees, with probability at least
    ``1 - delta``, that more than ``eta * |u|`` points of a cluster ``u``
    appear in a uniform sample of ``D``:

    ``s = eta*n + (n/|u|) log(1/delta)
          + (n/|u|) sqrt(log(1/delta)^2 + 2 eta |u| log(1/delta))``

    >>> s = uniform_sample_size(n=100_000, cluster_size=1000, eta=0.2,
    ...                         delta=0.1)
    >>> 0.20 < s / 100_000 < 0.25   # the paper's "25% of the dataset"
    True
    """
    _check_common(n, cluster_size, eta, delta)
    log_term = math.log(1.0 / delta)
    ratio = n / cluster_size
    return (
        eta * n
        + ratio * log_term
        + ratio * math.sqrt(log_term**2 + 2.0 * eta * cluster_size * log_term)
    )


def required_inclusion_probability(
    n: int, cluster_size: int, eta: float, delta: float
) -> float:
    """Per-point inclusion probability a cluster point needs for the
    guarantee — the uniform bound expressed as a rate ``s / n``."""
    return min(1.0, uniform_sample_size(n, cluster_size, eta, delta) / n)


def biased_sample_size(
    n: int, cluster_size: int, eta: float, delta: float, p: float
) -> float:
    """Expected sample size under rule R of Theorem 1.

    Rule R spends a fraction ``p`` of the expected sample size on the
    cluster: cluster points are included with probability ``p * s_R /
    |u|`` and the rest share the remaining mass uniformly. Matching the
    uniform guarantee requires the cluster-point inclusion probability to
    equal the uniform rate ``q* = s/n``, giving

    ``s_R = q* |u| / p``.

    Theorem 1 follows immediately: ``s_R <= s  iff  p >= |u| / n``.

    >>> n, u = 100_000, 1000
    >>> s = uniform_sample_size(n, u, 0.2, 0.1)
    >>> s_r = biased_sample_size(n, u, 0.2, 0.1, p=0.5)
    >>> s_r < s      # p = 0.5 >> |u|/n = 0.01
    True
    """
    _check_common(n, cluster_size, eta, delta)
    if not 0.0 < p <= 1.0:
        raise ParameterError(f"p must be in (0, 1]; got {p}.")
    q_star = required_inclusion_probability(n, cluster_size, eta, delta)
    return q_star * cluster_size / p


def rule_r_probabilities(
    n: int, cluster_size: int, sample_size: float, p: float
) -> tuple[float, float]:
    """Per-point inclusion probabilities (inside, outside) under rule R.

    A fraction ``p`` of the expected sample size ``b`` is allocated to
    the ``|u|`` cluster points and ``1-p`` to the other ``n - |u|``.
    """
    _check_common(n, cluster_size, eta=0.0, delta=0.5)
    if not 0.0 < p <= 1.0:
        raise ParameterError(f"p must be in (0, 1]; got {p}.")
    if sample_size <= 0:
        raise ParameterError(f"sample_size must be > 0; got {sample_size}.")
    inside = min(1.0, p * sample_size / cluster_size)
    if n == cluster_size:
        return inside, 0.0
    outside = min(1.0, (1.0 - p) * sample_size / (n - cluster_size))
    return inside, outside


def cluster_inclusion_probability(
    cluster_size: int, inclusion_prob: float, eta: float
) -> float:
    """Exact ``P(more than eta*|u| cluster points are sampled)``.

    Cluster points enter the sample independently with probability
    ``inclusion_prob``, so the count is binomial and the event is a
    binomial upper tail. Used to verify the bounds by simulation.
    """
    if cluster_size < 1:
        raise ParameterError(f"cluster_size must be >= 1; got {cluster_size}.")
    if not 0.0 <= inclusion_prob <= 1.0:
        raise ParameterError(
            f"inclusion_prob must be in [0, 1]; got {inclusion_prob}."
        )
    if not 0.0 <= eta <= 1.0:
        raise ParameterError(f"eta must be in [0, 1]; got {eta}.")
    threshold = math.floor(eta * cluster_size)
    # P(X > threshold) with X ~ Binomial(|u|, q).
    return float(stats.binom.sf(threshold, cluster_size, inclusion_prob))


def theorem1_holds(n: int, cluster_size: int, p: float) -> bool:
    """The iff condition of Theorem 1: biased beats uniform iff
    ``p >= |u| / n``."""
    if not 0.0 < p <= 1.0:
        raise ParameterError(f"p must be in (0, 1]; got {p}.")
    if not 1 <= cluster_size <= n:
        raise ParameterError(
            f"cluster_size must be in [1, n={n}]; got {cluster_size}."
        )
    return p >= cluster_size / n
