"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything the library throws with a single ``except`` clause while
still letting programming errors (``TypeError`` from misuse of numpy, etc.)
propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NotFittedError",
    "DataValidationError",
    "ParameterError",
    "ConvergenceWarning",
    "TransientIOError",
    "StreamReadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NotFittedError(ReproError):
    """An estimator method requiring a fitted model was called before fit.

    Raised by density estimators, samplers, and clusterers whose
    ``predict``/``sample``/``score`` methods are used before ``fit``.
    """


class DataValidationError(ReproError, ValueError):
    """Input data failed validation (wrong shape, NaNs, empty, ...)."""


class ParameterError(ReproError, ValueError):
    """A hyper-parameter is outside its documented domain."""


class TransientIOError(ReproError, IOError):
    """A stream read failed in a way that is expected to succeed on retry.

    Raised by the fault-injection layer (and appropriate for real
    sources whose failures are transient — NFS hiccups, object-store
    throttling). :class:`repro.faults.RetryPolicy` treats this, and any
    other ``OSError``, as retryable.
    """


class StreamReadError(ReproError):
    """A chunk read kept failing after the retry budget was exhausted.

    Carries the final underlying error as ``__cause__``. Deliberately
    *not* an ``OSError`` subclass so a retry loop can never catch and
    re-retry its own give-up signal.
    """


class ConvergenceWarning(UserWarning):
    """An iterative algorithm stopped before meeting its tolerance."""
