"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything the library throws with a single ``except`` clause while
still letting programming errors (``TypeError`` from misuse of numpy, etc.)
propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NotFittedError",
    "DataValidationError",
    "ParameterError",
    "ConvergenceWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NotFittedError(ReproError):
    """An estimator method requiring a fitted model was called before fit.

    Raised by density estimators, samplers, and clusterers whose
    ``predict``/``sample``/``score`` methods are used before ``fit``.
    """


class DataValidationError(ReproError, ValueError):
    """Input data failed validation (wrong shape, NaNs, empty, ...)."""


class ParameterError(ReproError, ValueError):
    """A hyper-parameter is outside its documented domain."""


class ConvergenceWarning(UserWarning):
    """An iterative algorithm stopped before meeting its tolerance."""
