"""Ambient shard-count resolution.

Mirrors the worker-count knob of :mod:`repro.parallel.backend`: one
``--shards`` flag (or ``REPRO_SHARDS`` environment variable) reaches
every fit/eval/gather hot path without threading a parameter through
each constructor. Resolution order:

1. an explicit ``shards`` argument wins;
2. otherwise the ambient default installed by :func:`use_shards`
   (what ``repro run --shards`` sets);
3. otherwise the ``REPRO_SHARDS`` environment variable;
4. otherwise ``1`` — the unsharded path.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from repro.exceptions import ParameterError

__all__ = [
    "SHARDS_ENV",
    "resolve_shards",
    "use_shards",
]

#: Environment variable overriding the default shard count.
SHARDS_ENV = "REPRO_SHARDS"

_DEFAULT_SHARDS: ContextVar[int | None] = ContextVar(
    "repro_sharding_default_shards", default=None
)


def resolve_shards(shards: int | None = None) -> int:
    """Resolve a ``shards`` request to a concrete shard count ``>= 1``.

    Parameters
    ----------
    shards:
        Explicit request, or ``None`` to defer to the ambient default
        (:func:`use_shards`), then the ``REPRO_SHARDS`` environment
        variable, then ``1``.
    """
    if shards is None:
        shards = _DEFAULT_SHARDS.get()
    if shards is None:
        raw = os.environ.get(SHARDS_ENV, "").strip()
        if raw:
            try:
                shards = int(raw)
            except ValueError:
                raise ParameterError(
                    f"{SHARDS_ENV} must be an integer; got {raw!r}."
                ) from None
        else:
            shards = 1
    shards = int(shards)
    if shards < 1:
        raise ParameterError(f"shards must be >= 1; got {shards}.")
    return shards


@contextmanager
def use_shards(shards: int | None) -> Iterator[None]:
    """Install ``shards`` as the ambient default for a ``with`` block.

    Everything inside the block that resolves ``shards=None`` — the
    sharded branches of the estimator fit, the density-evaluation pass
    and the gather passes — picks this value up. Built on a context
    variable, so concurrent threads and tasks never observe each
    other's defaults. Results are byte-identical for any value (see
    :mod:`repro.sharding`).
    """
    if shards is not None:
        shards = int(shards)
        if shards < 1:
            raise ParameterError(f"shards must be >= 1; got {shards}.")
    token = _DEFAULT_SHARDS.set(shards)
    try:
        yield
    finally:
        _DEFAULT_SHARDS.reset(token)
