"""Sharded out-of-core fitting: plans, mergeable partials, fan-out.

This package splits one dataset pass into ``S`` contiguous row-range
shards (:class:`ShardPlan`), runs each shard through the existing
:mod:`repro.parallel` backends (:func:`shard_map` and the scan helpers
:func:`fit_shards` / :func:`eval_shards` / :func:`sharded_gather`),
and folds the mergeable shard partials with a deterministic left fold
(:func:`merge_partials`). Results are byte-identical to the serial
pass for any shard count and any worker count — see DESIGN.md §13 for
the merge contracts and the determinism argument.

The ambient shard count is configured like the worker count:
``repro run --shards S``, :func:`use_shards`, or the ``REPRO_SHARDS``
environment variable (:func:`resolve_shards`).
"""

from repro.sharding.context import SHARDS_ENV, resolve_shards, use_shards
from repro.sharding.partials import (
    BoundsShard,
    GatherShard,
    NormalizerShard,
    ShardFitState,
    TreeCountShard,
    merge_partials,
)
from repro.sharding.plan import ShardPlan, ShardSpec, ShardView
from repro.sharding.runner import (
    SHARD_EVAL_PHASE,
    SHARD_FIT_PHASE,
    SHARD_GATHER_PHASE,
    bounds_shards,
    eval_shards,
    fit_shards,
    shard_map,
    sharded_gather,
    tree_count_shards,
)

__all__ = [
    "SHARD_EVAL_PHASE",
    "SHARD_FIT_PHASE",
    "SHARD_GATHER_PHASE",
    "SHARDS_ENV",
    "BoundsShard",
    "GatherShard",
    "NormalizerShard",
    "ShardFitState",
    "ShardPlan",
    "ShardSpec",
    "ShardView",
    "TreeCountShard",
    "bounds_shards",
    "eval_shards",
    "fit_shards",
    "merge_partials",
    "resolve_shards",
    "shard_map",
    "sharded_gather",
    "tree_count_shards",
    "use_shards",
]
