"""Shard plans: splitting one stream pass into row-range shards.

A :class:`ShardPlan` partitions the *chunk sequence* of a stream pass
into ``S`` contiguous ranges. Splitting on chunk boundaries (never
inside a chunk) is what keeps sharded execution byte-identical to the
serial pass: every downstream consumer — moment accumulators, policy
application, density evaluation — sees exactly the chunks a serial
scan would have seen, in the same order, merely grouped by shard.

A :class:`ShardView` is one shard's window onto the parent stream. It
is deliberately *not* a ``DataStream`` subclass: a view is not a
re-iterable pass-counted dataset, it is a single-use reader whose pass
bookkeeping belongs to the coordinating scan (see
:mod:`repro.sharding.runner`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ParameterError

__all__ = [
    "ShardPlan",
    "ShardSpec",
    "ShardView",
]


@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of the chunk sequence.

    Attributes
    ----------
    index:
        Shard position in plan order.
    chunk_lo / chunk_hi:
        Half-open chunk-index range ``[chunk_lo, chunk_hi)``.
    row_start / row_stop:
        Half-open surviving-row range the chunks cover.
    """

    index: int
    chunk_lo: int
    chunk_hi: int
    row_start: int
    row_stop: int

    @property
    def n_rows(self) -> int:
        return self.row_stop - self.row_start

    @property
    def n_chunks(self) -> int:
        return self.chunk_hi - self.chunk_lo


@dataclass(frozen=True)
class ShardView:
    """Single-use reader for one shard's chunk range.

    ``chunks()`` yields ``(absolute surviving-row offset, chunk)``
    pairs byte-identical to the corresponding slice of the parent's
    ``iter_with_offsets()``; per-chunk recorder effects land on the
    ambient (worker) recorder and merge back through the parallel
    harness.
    """

    parent: object
    spec: ShardSpec

    def chunks(self):
        return self.parent.iter_chunk_range(
            self.spec.chunk_lo, self.spec.chunk_hi
        )


class ShardPlan:
    """A chunk-aligned split of one stream pass into ``S`` shards.

    Parameters
    ----------
    stream:
        Any stream exposing the shard-support API (``chunk_sizes()``
        and ``iter_chunk_range()``): the in-memory ``DataStream`` and
        both file streams qualify.
    n_shards:
        Number of row-range shards. More shards than chunks simply
        leaves the surplus shards empty (they dispatch no work).
    """

    def __init__(self, stream, n_shards: int) -> None:
        n_shards = int(n_shards)
        if n_shards < 1:
            raise ParameterError(f"n_shards must be >= 1; got {n_shards}.")
        sizes = getattr(stream, "chunk_sizes", None)
        if sizes is None:
            raise ParameterError(
                f"{type(stream).__name__} does not expose chunk_sizes(); "
                "it cannot be sharded."
            )
        self.stream = stream
        self.n_shards = n_shards
        self.chunk_sizes: tuple[int, ...] = tuple(int(s) for s in sizes())
        self.n_rows = sum(self.chunk_sizes)
        self.specs: tuple[ShardSpec, ...] = self._split()

    @classmethod
    def for_stream(cls, stream, n_shards: int) -> "ShardPlan":
        """Build a plan for ``stream`` (alias of the constructor)."""
        return cls(stream, n_shards)

    def _split(self) -> tuple[ShardSpec, ...]:
        n_chunks = len(self.chunk_sizes)
        base, extra = divmod(n_chunks, self.n_shards)
        specs = []
        chunk_lo = 0
        row_start = 0
        for index in range(self.n_shards):
            take = base + (1 if index < extra else 0)
            chunk_hi = chunk_lo + take
            rows = sum(self.chunk_sizes[chunk_lo:chunk_hi])
            specs.append(
                ShardSpec(
                    index=index,
                    chunk_lo=chunk_lo,
                    chunk_hi=chunk_hi,
                    row_start=row_start,
                    row_stop=row_start + rows,
                )
            )
            chunk_lo = chunk_hi
            row_start += rows
        return tuple(specs)

    def views(self) -> list[ShardView]:
        """One :class:`ShardView` per non-empty shard, in plan order."""
        return [
            ShardView(parent=self.stream, spec=spec)
            for spec in self.specs
            if spec.n_chunks
        ]
