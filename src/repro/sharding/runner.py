"""Shard fan-out execution: dispatch, pass bookkeeping, folding.

One *logical* dataset pass is executed as ``S`` shard tasks fanned out
through the existing :mod:`repro.parallel` backends. The coordinator
owns the pass bookkeeping (one ``passes`` bump and one ``data_passes``
count per logical scan, exactly like a serial scan); shard workers own
only the per-chunk effects (``points_seen``, ``stream_chunk_rows``,
fault-policy counters), which the parallel harness records on worker
recorders and merges back in submission — i.e. shard — order. The
shard partials themselves are folded with a deterministic left fold
(:func:`repro.sharding.partials.merge_partials`), which is what makes
every sharded scan byte-identical to its serial counterpart for any
``S`` and any ``n_jobs``.

Workers here are deliberately generator-free: all randomness stays on
the coordinator (reservoir acceptance is pre-planned by
:meth:`repro.density.reservoir.ReservoirSampler.plan`, Bernoulli draws
happen against the reassembled probability array), so shard results
cannot depend on worker scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataValidationError
from repro.obs import get_recorder
from repro.parallel import parallel_map_chunks
from repro.sharding.context import resolve_shards
from repro.sharding.partials import (
    BoundsShard,
    GatherShard,
    NormalizerShard,
    ShardFitState,
    TreeCountShard,
    merge_partials,
)
from repro.sharding.plan import ShardPlan, ShardView

__all__ = [
    "SHARD_EVAL_PHASE",
    "SHARD_FIT_PHASE",
    "SHARD_GATHER_PHASE",
    "bounds_shards",
    "eval_shards",
    "fit_shards",
    "shard_map",
    "sharded_gather",
    "tree_count_shards",
]

#: Span labels for the three sharded scan kinds. They are module
#: constants passed *by parameter* into :func:`shard_map` so every
#: sharded scan opens its span under the same label while each call
#: site stays free of a literal phase string: the sharded branch of an
#: audited entry then attributes its one scan to the same phase as the
#: serial branch it mirrors, which is what the declared
#: ``__n_passes__`` tables describe.
SHARD_FIT_PHASE = "shard_fit"
SHARD_EVAL_PHASE = "shard_eval"
SHARD_GATHER_PHASE = "shard_gather"


@dataclass(frozen=True)
class _FitTask:
    """One shard of a fit scan: a view plus its planned row fetches."""

    view: ShardView
    wanted: np.ndarray


@dataclass(frozen=True)
class _EvalTask:
    """One shard of a density-evaluation scan."""

    view: ShardView
    evaluate: object


@dataclass(frozen=True)
class _GatherTask:
    """One shard of a masked gather scan; ``mask`` is shard-local."""

    view: ShardView
    mask: np.ndarray


def _begin_scan(plan: ShardPlan) -> None:
    """Coordinator-side bookkeeping for one logical sharded scan.

    Mirrors what one serial iteration of the stream would record at
    pass granularity; per-chunk effects land on the worker recorders
    via ``iter_chunk_range`` instead.
    """
    plan.stream.passes += 1
    recorder = get_recorder()
    recorder.count("data_passes")
    recorder.count("shard_rows", plan.n_rows)


def shard_map(worker, tasks, *, n_jobs=None, phase=SHARD_FIT_PHASE):
    """Fan shard ``tasks`` out to ``worker`` under a ``phase`` span.

    A shard fan-out reads each row of the plan's stream exactly once:
    the tasks partition the chunk sequence, so the dispatch costs one
    dataset pass in total regardless of ``S`` or ``n_jobs``. Results
    come back in task (shard) order.
    """
    recorder = get_recorder()
    with recorder.phase(phase):
        return parallel_map_chunks(worker, list(tasks), n_jobs=n_jobs)


def _fit_shard_worker(task: _FitTask) -> ShardFitState:
    """Per-chunk moment statistics plus planned reservoir row fetches.

    Generator-free: which rows to fetch was decided up front by the
    coordinator's acceptance plan, and the moment statistics are raw
    per-chunk triples — the Welford fold (not FP-associative) happens
    once, on the coordinator, in global chunk order.
    """
    from repro.density.kde import chunk_moment_stats

    state = ShardFitState()
    wanted = task.wanted
    for offset, chunk in task.view.chunks():
        count, mean, m2 = chunk_moment_stats(chunk)
        state.add_chunk(count, mean, m2)
        lo = int(np.searchsorted(wanted, offset))
        hi = int(np.searchsorted(wanted, offset + chunk.shape[0]))
        for index in wanted[lo:hi]:
            state.add_row(int(index), chunk[int(index) - offset])
    return state


def fit_shards(plan: ShardPlan, wanted_indices, *, n_jobs=None) -> ShardFitState:
    """Run one sharded fit scan and fold the shard partials.

    ``wanted_indices`` are the sorted absolute row indices the
    reservoir acceptance plan needs fetched; each shard receives only
    the slice that falls inside its row range.
    """
    _begin_scan(plan)
    views = plan.views()
    wanted = np.asarray(wanted_indices, dtype=np.int64)
    tasks = []
    for view in views:
        lo = int(np.searchsorted(wanted, view.spec.row_start))
        hi = int(np.searchsorted(wanted, view.spec.row_stop))
        tasks.append(_FitTask(view=view, wanted=wanted[lo:hi]))
    get_recorder().count("shards_fitted", len(tasks))
    partials = shard_map(
        _fit_shard_worker, tasks, n_jobs=n_jobs, phase=SHARD_FIT_PHASE
    )
    return merge_partials(partials)


@dataclass(frozen=True)
class _BoundsTask:
    """One shard of a bounding-box scan."""

    view: ShardView


@dataclass(frozen=True)
class _TreeCountTask:
    """One shard of a tree leaf-counting scan.

    Carries the coordinator-built forest structure (heap-order split
    attributes and thresholds) so workers can route rows without any
    generator state of their own.
    """

    view: ShardView
    features: np.ndarray
    thresholds: np.ndarray


def _bounds_shard_worker(task: _BoundsTask) -> BoundsShard:
    """Per-shard bounding box. Min/max is exact, so pre-reducing across
    the shard's chunks is byte-identical to the serial scaler chain."""
    shard = BoundsShard()
    for _offset, chunk in task.view.chunks():
        shard.observe_chunk(chunk)
    return shard


def bounds_shards(plan: ShardPlan, *, n_jobs=None) -> BoundsShard:
    """Run one sharded bounding-box scan and fold the shard partials."""
    _begin_scan(plan)
    tasks = [_BoundsTask(view=view) for view in plan.views()]
    partials = shard_map(
        _bounds_shard_worker, tasks, n_jobs=n_jobs, phase=SHARD_FIT_PHASE
    )
    return merge_partials(partials)


def _tree_count_worker(task: _TreeCountTask) -> TreeCountShard:
    """Per-shard integer leaf-occupancy counts (exactly mergeable)."""
    from repro.density.tree import tree_leaf_indices

    n_trees = task.features.shape[0]
    n_leaves = task.features.shape[1] + 1
    offsets = (np.arange(n_trees) * n_leaves)[:, None]
    shard = TreeCountShard()
    for _offset, chunk in task.view.chunks():
        leaves = tree_leaf_indices(chunk, task.features, task.thresholds)
        flat = np.bincount(
            (offsets + leaves).ravel(), minlength=n_trees * n_leaves
        )
        shard.add_counts(flat.reshape(n_trees, n_leaves), chunk.shape[0])
    return shard


def tree_count_shards(
    plan: ShardPlan, features, thresholds, *, n_jobs=None
) -> TreeCountShard:
    """Run one sharded tree-counting scan and fold the shard partials.

    ``features`` / ``thresholds`` are the coordinator-built forest
    (all randomness stayed there); each shard counts its own row range
    and the integer tables fold exactly.
    """
    _begin_scan(plan)
    tasks = [
        _TreeCountTask(view=view, features=features, thresholds=thresholds)
        for view in plan.views()
    ]
    get_recorder().count("shards_fitted", len(tasks))
    partials = shard_map(
        _tree_count_worker, tasks, n_jobs=n_jobs, phase=SHARD_FIT_PHASE
    )
    return merge_partials(partials)


def _eval_shard_worker(task: _EvalTask) -> NormalizerShard:
    """Evaluate one shard's chunks, keeping slices in stream order."""
    shard = NormalizerShard(row_start=task.view.spec.row_start)
    for _offset, chunk in task.view.chunks():
        shard.add_values(task.evaluate(chunk))
    return shard


def eval_shards(plan: ShardPlan, evaluate, *, n_jobs=None) -> NormalizerShard:
    """Run one sharded evaluation scan and fold the shard partials.

    ``evaluate`` maps a chunk to its per-row values (typically a bound
    ``estimator.evaluate``); the folded result reassembles the full
    per-point array byte-identically to a serial pass.
    """
    _begin_scan(plan)
    tasks = [_EvalTask(view=view, evaluate=evaluate) for view in plan.views()]
    partials = shard_map(
        _eval_shard_worker, tasks, n_jobs=n_jobs, phase=SHARD_EVAL_PHASE
    )
    return merge_partials(partials)


def _gather_shard_worker(task: _GatherTask) -> GatherShard:
    """Collect one shard's masked rows, in stream order."""
    shard = GatherShard()
    row_start = task.view.spec.row_start
    for offset, chunk in task.view.chunks():
        local = task.mask[
            offset - row_start : offset - row_start + chunk.shape[0]
        ]
        shard.add_chunk(chunk, local)
    return shard


def sharded_gather(source, mask, *, n_shards=None, n_jobs=None) -> np.ndarray:
    """Sharded masked row gather, byte-identical to the serial loop.

    The mask is precomputed by the coordinator (all randomness stays
    there); each shard slices its own window. Raises the same
    :class:`DataValidationError` as the serial gather when the scanned
    row count disagrees with the mask length.
    """
    plan = ShardPlan(source, resolve_shards(n_shards))
    _begin_scan(plan)
    mask = np.asarray(mask)
    tasks = [
        _GatherTask(
            view=view,
            mask=np.ascontiguousarray(
                mask[view.spec.row_start : view.spec.row_stop]
            ),
        )
        for view in plan.views()
    ]
    partials = shard_map(
        _gather_shard_worker, tasks, n_jobs=n_jobs, phase=SHARD_GATHER_PHASE
    )
    folded = merge_partials(partials)
    if folded.seen != mask.shape[0]:
        raise DataValidationError(
            f"stream yielded {folded.seen} rows in the gather pass but the "
            f"selection mask covers {mask.shape[0]}; passes disagree "
            "on the surviving-row count."
        )
    if not folded.parts:
        return np.empty((0, source.n_dims))
    return np.vstack(folded.parts)
