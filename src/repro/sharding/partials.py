"""Mergeable partial-fit states shipped back from shard workers.

Every class here follows the merge algebra the observability layer
already uses for worker counters (and RA007 audits): a worker builds
its partial in isolation, and the coordinator folds the partials with
a deterministic *left fold* in shard order —
``p1.merge(p2).merge(p3)...`` — which equals the serial result because
each partial carries its data in stream order and ``merge`` is
order-preserving concatenation, not commutative aggregation. Floating
point is not associative, so no partial pre-reduces across chunks:
reductions (Welford moment folds, normaliser sums) happen once, on the
coordinator, in global chunk order. The two *exact* algebras are the
sanctioned exception — elementwise min/max (:class:`BoundsShard`) and
integer addition (:class:`TreeCountShard`) are associative bit for
bit, so those partials may pre-reduce and merge commutatively.

Memory: O(shard output) per partial — chunk moment statistics are one
``(count, mean, m2)`` triple per chunk, fetched reservoir rows are
bounded by the acceptance plan, gathered rows by the selection mask.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "BoundsShard",
    "GatherShard",
    "NormalizerShard",
    "ShardFitState",
    "TreeCountShard",
    "merge_partials",
]


@dataclass
class ShardFitState:
    """Partial estimator-fit state from one shard of the fit scan.

    Carries per-chunk moment statistics (in stream order, unreduced)
    plus the rows the reservoir acceptance plan wants from this
    shard's row range. ``KernelDensityEstimator.fit_from_partials``
    consumes the left-fold of these.
    """

    chunk_stats: list = field(default_factory=list)
    indices: list = field(default_factory=list)
    rows: list = field(default_factory=list)

    def add_chunk(self, count: int, mean: np.ndarray, m2: np.ndarray) -> None:
        """Record one chunk's moment statistics, in stream order."""
        self.chunk_stats.append((int(count), mean, m2))

    def add_row(self, index: int, row: np.ndarray) -> None:
        """Record one planned reservoir row fetch."""
        self.indices.append(int(index))
        self.rows.append(np.array(row, dtype=np.float64))

    def merge(self, other: "ShardFitState") -> "ShardFitState":
        """Left-fold combiner: append ``other``'s shard after this one."""
        self.chunk_stats.extend(other.chunk_stats)
        self.indices.extend(other.indices)
        self.rows.extend(other.rows)
        return self

    def fetched_rows(self) -> dict:
        """The planned row fetches as ``{absolute index: row}``."""
        return dict(zip(self.indices, self.rows))


@dataclass
class NormalizerShard:
    """Partial density-evaluation state from one shard of the eval scan.

    Holds the per-chunk density slices of one row range, in stream
    order. The fold reassembles the full per-point density array
    byte-identically to the serial pass, so the normaliser
    ``k = sum f^a`` and the Horvitz-Thompson inclusion probabilities
    derived from it are exact — they are computed once, from the
    reassembled array, by the same code the serial path runs.
    """

    row_start: int
    parts: list = field(default_factory=list)
    seen: int = 0

    def add_values(self, values: np.ndarray) -> None:
        """Record one chunk's density values, in stream order."""
        self.parts.append(np.asarray(values, dtype=np.float64))
        self.seen += int(values.shape[0])

    def merge(self, other: "NormalizerShard") -> "NormalizerShard":
        """Left-fold combiner; shards must be range-adjacent."""
        if other.row_start != self.row_start + self.seen:
            raise ValueError(
                f"cannot merge normalizer shards: right shard starts at "
                f"row {other.row_start}, left shard ends at "
                f"{self.row_start + self.seen}."
            )
        self.parts.extend(other.parts)
        self.seen += other.seen
        return self

    def fill(self, out: np.ndarray) -> None:
        """Write the slices into the preallocated full array."""
        offset = self.row_start
        for values in self.parts:
            out[offset : offset + values.shape[0]] = values
            offset += values.shape[0]


@dataclass
class GatherShard:
    """Partial gather state from one shard of a masked gather scan.

    ``parts`` holds the selected rows of each chunk, in stream order;
    ``seen`` counts every row the shard scanned (selected or not), so
    the coordinator can check mask alignment exactly as the serial
    gather does.
    """

    parts: list = field(default_factory=list)
    seen: int = 0

    def add_chunk(self, chunk: np.ndarray, local_mask: np.ndarray) -> None:
        """Record one chunk's selected rows, in stream order."""
        self.seen += int(chunk.shape[0])
        if local_mask.any():
            self.parts.append(chunk[local_mask])

    def merge(self, other: "GatherShard") -> "GatherShard":
        """Left-fold combiner: append ``other``'s rows after this one."""
        self.parts.extend(other.parts)
        self.seen += other.seen
        return self


@dataclass
class BoundsShard:
    """Partial bounding-box state from one shard of a box-finding scan.

    Elementwise min/max is exactly associative and commutative, so —
    unlike the FP folds above — this partial may pre-reduce across its
    own chunks: the fold over shards still equals the serial
    ``MinMaxScaler.partial_fit`` chain bit for bit.
    """

    mins: np.ndarray | None = None
    maxs: np.ndarray | None = None
    seen: int = 0

    def observe_chunk(self, chunk: np.ndarray) -> None:
        """Fold one chunk's extrema into the shard's running box."""
        self.seen += int(chunk.shape[0])
        lo = chunk.min(axis=0)
        hi = chunk.max(axis=0)
        if self.mins is None:
            self.mins, self.maxs = lo, hi
        else:
            self.mins = np.minimum(self.mins, lo)
            self.maxs = np.maximum(self.maxs, hi)

    def merge(self, other: "BoundsShard") -> "BoundsShard":
        """Left-fold combiner: join the two boxes (exact)."""
        if other.mins is not None:
            if self.mins is None:
                self.mins, self.maxs = other.mins, other.maxs
            else:
                self.mins = np.minimum(self.mins, other.mins)
                self.maxs = np.maximum(self.maxs, other.maxs)
        self.seen += other.seen
        return self


@dataclass
class TreeCountShard:
    """Partial leaf-occupancy counts from one shard of a tree count scan.

    ``counts`` is the ``(n_trees, n_leaves)`` integer occupancy table of
    one row range. Integer addition is exactly associative, so the fold
    over shards equals the serial counting scan bit for bit — no
    coordinator-side replay is needed (contrast ``ShardFitState``).
    """

    counts: np.ndarray | None = None
    seen: int = 0

    def add_counts(self, chunk_counts: np.ndarray, rows: int) -> None:
        """Fold one chunk's integer leaf counts into the shard total."""
        self.seen += int(rows)
        if self.counts is None:
            self.counts = np.asarray(chunk_counts, dtype=np.int64)
        else:
            self.counts = self.counts + chunk_counts

    def merge(self, other: "TreeCountShard") -> "TreeCountShard":
        """Left-fold combiner: add the occupancy tables (exact)."""
        if other.counts is not None:
            if self.counts is None:
                self.counts = other.counts
            else:
                self.counts = self.counts + other.counts
        self.seen += other.seen
        return self


def merge_partials(partials):
    """Deterministic left fold of shard partials, in shard order.

    Returns the folded first partial (mutated in place); counts one
    ``shard_merges`` per fold step. Raises on an empty list — a scan
    that dispatched no work is a coordinator bug, not a mergeable
    state.
    """
    from repro.obs import get_recorder

    partials = list(partials)
    if not partials:
        raise ValueError("no shard partials to merge.")
    folded = partials[0]
    for part in partials[1:]:
        folded = folded.merge(part)
    if len(partials) > 1:
        get_recorder().count("shard_merges", len(partials) - 1)
    return folded
