"""Seeded fault plans: which faults hit which chunk, decided up front.

A :class:`FaultPlan` is a pure function from a seed and per-kind rates
to concrete fault decisions, so an injected chaos run replays
byte-identically: the same seed produces the same NaN rows, the same
corrupted cells, the same truncations and the same transient read
failures, run after run and for any worker count.

Two families of faults with different keying, mirroring reality:

* **Persistent data corruption** (NaN/Inf rows, corrupted values, short
  reads) is keyed by *chunk index only* — corrupt bytes on disk are
  corrupt on every read, so every dataset pass observes the identical
  damage. This is what keeps multi-pass algorithms consistent under
  quarantine: the surviving-row set is the same in the density pass and
  the draw pass.
* **Transient I/O errors** are keyed by *(pass, chunk)* — a flaky read
  may fail on one pass and succeed on the next, and retrying the same
  read within a pass succeeds once the planned failure count is spent.

All randomness uses generators seeded from ``(tag, seed, key...)``
tuples; nothing touches global state and no generator is shared across
decisions, so decisions are order-independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_fraction, check_positive

__all__ = ["ChunkFaults", "FaultPlan"]

# Domain-separation tags for the per-decision generators.
_TAG_DATA = 101
_TAG_IO = 202


@dataclass(frozen=True)
class ChunkFaults:
    """Planned persistent faults for one chunk.

    Row indices refer to the chunk *after* truncation: a short read
    drops the chunk's tail first, and value faults only ever target
    rows that are actually delivered, so fault accounting is exact.

    Attributes
    ----------
    nan_rows:
        Rows whose every cell becomes NaN.
    inf_rows:
        Rows whose every cell becomes ``+/-inf`` (sign per row).
    inf_signs:
        The sign (+1.0 / -1.0) applied to each entry of ``inf_rows``.
    corrupt_rows, corrupt_cols:
        Coordinates of individually corrupted cells (huge-magnitude
        finite garbage, the bit-flip lookalike).
    corrupt_values:
        The garbage value written at each corrupted coordinate.
    n_truncated:
        Trailing rows the short read silently drops.
    """

    nan_rows: np.ndarray
    inf_rows: np.ndarray
    inf_signs: np.ndarray
    corrupt_rows: np.ndarray
    corrupt_cols: np.ndarray
    corrupt_values: np.ndarray
    n_truncated: int

    @property
    def n_bad_value_rows(self) -> int:
        """Distinct delivered rows carrying at least one invalid value."""
        return np.union1d(
            np.union1d(self.nan_rows, self.inf_rows), self.corrupt_rows
        ).shape[0]

    @property
    def is_clean(self) -> bool:
        """Whether this chunk carries no persistent fault at all."""
        return (
            self.n_truncated == 0
            and self.nan_rows.size == 0
            and self.inf_rows.size == 0
            and self.corrupt_rows.size == 0
        )


class FaultPlan:
    """Deterministic, seeded schedule of injected faults.

    Parameters
    ----------
    seed:
        Integer seed; the entire plan is a pure function of it (plus
        the rates).
    nan_row_rate:
        Per-row probability of the row being replaced with NaNs.
    inf_row_rate:
        Per-row probability of the row being replaced with ``+/-inf``.
    corrupt_cell_rate:
        Per-cell probability of the cell being overwritten with
        huge-magnitude finite garbage (catchable only by a
        :class:`~repro.faults.RowQuarantine` with ``max_abs`` set).
    short_read_rate:
        Per-chunk probability of a short read truncating the chunk.
    short_read_fraction:
        Fraction of the chunk a short read drops (at least one row).
    io_error_rate:
        Per-(pass, chunk) probability of transient read failures.
    io_failures:
        How many consecutive attempts fail when a transient error
        triggers; keep it at most the consumer's retry budget for runs
        that should recover.
    corrupt_magnitude:
        Magnitude scale of corrupted-cell garbage values.
    """

    __slots__ = (
        "seed",
        "nan_row_rate",
        "inf_row_rate",
        "corrupt_cell_rate",
        "short_read_rate",
        "short_read_fraction",
        "io_error_rate",
        "io_failures",
        "corrupt_magnitude",
    )

    def __init__(
        self,
        seed: int = 0,
        nan_row_rate: float = 0.0,
        inf_row_rate: float = 0.0,
        corrupt_cell_rate: float = 0.0,
        short_read_rate: float = 0.0,
        short_read_fraction: float = 0.25,
        io_error_rate: float = 0.0,
        io_failures: int = 1,
        corrupt_magnitude: float = 1e30,
    ) -> None:
        self.seed = int(seed)
        self.nan_row_rate = check_fraction(nan_row_rate, name="nan_row_rate")
        self.inf_row_rate = check_fraction(inf_row_rate, name="inf_row_rate")
        self.corrupt_cell_rate = check_fraction(
            corrupt_cell_rate, name="corrupt_cell_rate"
        )
        self.short_read_rate = check_fraction(
            short_read_rate, name="short_read_rate"
        )
        self.short_read_fraction = check_fraction(
            short_read_fraction, name="short_read_fraction"
        )
        self.io_error_rate = check_fraction(
            io_error_rate, name="io_error_rate"
        )
        self.io_failures = int(
            check_positive(io_failures, name="io_failures")
        )
        self.corrupt_magnitude = check_positive(
            corrupt_magnitude, name="corrupt_magnitude"
        )

    # -- decisions -----------------------------------------------------------

    def chunk_faults(
        self, chunk_index: int, n_rows: int, n_cols: int
    ) -> ChunkFaults:
        """The persistent faults of chunk ``chunk_index``.

        Parameters
        ----------
        chunk_index:
            0-based chunk position in the stream.
        n_rows, n_cols:
            Raw shape of the chunk before any fault applies.

        Returns
        -------
        ChunkFaults
            Identical for every call with the same arguments.
        """
        rng = np.random.default_rng(
            [_TAG_DATA, self.seed, int(chunk_index)]
        )
        n_truncated = 0
        if self.short_read_rate and rng.random() < self.short_read_rate:
            n_truncated = min(
                n_rows,
                max(1, int(round(self.short_read_fraction * n_rows))),
            )
        delivered = n_rows - n_truncated
        nan_rows = np.nonzero(rng.random(delivered) < self.nan_row_rate)[0]
        inf_mask = rng.random(delivered) < self.inf_row_rate
        # NaN wins where both trigger, keeping the two sets disjoint.
        inf_mask[nan_rows] = False
        inf_rows = np.nonzero(inf_mask)[0]
        inf_signs = np.where(rng.random(inf_rows.shape[0]) < 0.5, -1.0, 1.0)
        cell_mask = rng.random((delivered, n_cols)) < self.corrupt_cell_rate
        corrupt_rows, corrupt_cols = np.nonzero(cell_mask)
        corrupt_values = (
            np.where(rng.random(corrupt_rows.shape[0]) < 0.5, -1.0, 1.0)
            * self.corrupt_magnitude
            * (1.0 + rng.random(corrupt_rows.shape[0]))
        )
        return ChunkFaults(
            nan_rows=nan_rows,
            inf_rows=inf_rows,
            inf_signs=inf_signs,
            corrupt_rows=corrupt_rows,
            corrupt_cols=corrupt_cols,
            corrupt_values=corrupt_values,
            n_truncated=n_truncated,
        )

    def io_failures_for(self, pass_index: int, chunk_index: int) -> int:
        """Planned consecutive read failures for (pass, chunk).

        Parameters
        ----------
        pass_index:
            1-based dataset-pass number (a stream's ``passes`` value
            during the pass).
        chunk_index:
            0-based chunk position in the stream.

        Returns
        -------
        int
            0 when the read succeeds immediately, otherwise the number
            of attempts that must fail before one succeeds.
        """
        if not self.io_error_rate:
            return 0
        rng = np.random.default_rng(
            [_TAG_IO, self.seed, int(pass_index), int(chunk_index)]
        )
        return self.io_failures if rng.random() < self.io_error_rate else 0

    # -- accounting ----------------------------------------------------------

    def corrupt_detectable_by(self, policy) -> bool:
        """Whether ``policy`` flags this plan's corrupted-cell garbage.

        Corrupted cells are *finite*, so only a policy with ``max_abs``
        below :attr:`corrupt_magnitude` quarantines them; NaN/Inf rows
        are always detectable.

        Parameters
        ----------
        policy:
            The :class:`~repro.faults.RowQuarantine` the consuming
            stream applies.
        """
        return (
            policy.max_abs is not None
            and policy.max_abs < self.corrupt_magnitude
        )
