"""Row-level fault policies: what a stream does with invalid rows.

Every chunk a :class:`~repro.utils.streams.DataStream` (or file stream)
emits is routed through a :class:`RowQuarantine` policy before any
sampler, density estimator or detector sees it. The policy decides what
happens to rows carrying NaN/Inf cells (or, optionally, cells whose
magnitude exceeds a plausibility bound):

* ``strict`` (the default) — raise a typed
  :class:`~repro.exceptions.DataValidationError` naming the offending
  pass, phase and chunk offset. This preserves the library's historical
  fail-fast behaviour.
* ``quarantine`` — drop the bad rows, count them under the
  ``rows_quarantined`` observability counter, and continue the pass.
* ``repair`` — impute every bad cell from the statistics of its own
  chunk (per-column mean over the chunk's valid cells) and continue;
  counted under ``rows_repaired`` / ``cells_repaired``.

The ambient policy is held in a context variable (default strict), so
one ``with use_fault_policy("quarantine"):`` hardens every stream built
inside the block — including the ones samplers construct internally via
``as_stream`` — without threading a parameter through every call.

Determinism contract: a policy is bound to a stream at construction and
is a pure function of the chunk values, so every pass over the same
stream quarantines (or repairs) exactly the same rows. Downstream code
may therefore keep indexing by stream offsets across passes.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

import numpy as np

from repro.exceptions import DataValidationError, ParameterError
from repro.obs import get_recorder
from repro.utils.validation import check_array

__all__ = [
    "FAULT_POLICY_MODES",
    "RowQuarantine",
    "STRICT_POLICY",
    "get_fault_policy",
    "resolve_fault_policy",
    "use_fault_policy",
]

#: The three documented policy modes, in escalation order.
FAULT_POLICY_MODES = ("strict", "quarantine", "repair")


class RowQuarantine:
    """Per-chunk handling of invalid rows (strict / quarantine / repair).

    Parameters
    ----------
    mode:
        One of ``"strict"`` (raise), ``"quarantine"`` (drop + count) or
        ``"repair"`` (impute from chunk statistics + count).
    max_abs:
        Optional plausibility bound: cells with ``|value| > max_abs``
        are treated as invalid in addition to NaN/Inf cells. Leave
        ``None`` (the default) to flag non-finite values only. Set it
        comfortably above the legitimate data range — rows the bound
        catches are handled exactly like NaN rows.
    """

    __slots__ = ("mode", "max_abs")

    def __init__(self, mode: str = "strict", max_abs: float | None = None):
        if mode not in FAULT_POLICY_MODES:
            raise ParameterError(
                f"fault-policy mode must be one of {FAULT_POLICY_MODES}; "
                f"got {mode!r}."
            )
        self.mode = mode
        if max_abs is not None:
            max_abs = float(max_abs)
            if not max_abs > 0:
                raise ParameterError(
                    f"max_abs must be > 0 or None; got {max_abs}."
                )
        self.max_abs = max_abs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bound = "" if self.max_abs is None else f", max_abs={self.max_abs:g}"
        return f"RowQuarantine({self.mode!r}{bound})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RowQuarantine)
            and self.mode == other.mode
            and self.max_abs == other.max_abs
        )

    def __hash__(self) -> int:
        return hash((self.mode, self.max_abs))

    # -- detection -----------------------------------------------------------

    def invalid_cells(self, chunk: np.ndarray) -> np.ndarray:
        """Boolean ``(n, d)`` mask of cells this policy considers invalid.

        Parameters
        ----------
        chunk:
            A ``(n, d)`` float chunk.
        """
        bad = ~np.isfinite(chunk)
        if self.max_abs is not None:
            # |NaN| > bound is False, so the union is exact.
            bad |= np.abs(chunk) > self.max_abs
        return bad

    def count_invalid_rows(self, chunk: np.ndarray) -> int:
        """Number of rows of ``chunk`` holding at least one invalid cell.

        Pure (no recorder side effects): used by streams that need the
        surviving-row count up front, before any counted pass runs.

        Parameters
        ----------
        chunk:
            A ``(n, d)`` float chunk.
        """
        return int(self.invalid_cells(np.asarray(chunk)).any(axis=1).sum())

    # -- application ---------------------------------------------------------

    def apply(
        self,
        chunk: np.ndarray,
        *,
        origin: str = "data",
        pass_index: int | None = None,
        start: int = 0,
    ) -> np.ndarray:
        """Harden one chunk according to the policy mode.

        Parameters
        ----------
        chunk:
            The ``(n, d)`` chunk to validate.
        origin:
            Human-readable source name for error messages (a file path,
            ``"data"``, ...).
        pass_index:
            1-based index of the dataset pass emitting the chunk
            (``None`` for construction-time validation).
        start:
            Row offset of the chunk within the *raw* source, used in
            error messages and to name the first offending row.

        Returns
        -------
        numpy.ndarray
            The chunk with invalid rows dropped (quarantine), imputed
            (repair), or unchanged (no invalid cells). Strict mode
            raises instead of returning when invalid cells exist.

        Raises
        ------
        DataValidationError
            In strict mode, when the chunk holds any invalid cell. The
            message names the pass, the current observability phase
            (when one is open), the chunk offset and the first bad row.
        """
        chunk = np.asarray(chunk, dtype=np.float64)
        bad_cells = self.invalid_cells(chunk)
        if not bad_cells.any():
            return chunk
        bad_rows = bad_cells.any(axis=1)
        n_bad = int(bad_rows.sum())
        recorder = get_recorder()
        if self.mode == "strict":
            raise DataValidationError(
                self._strict_message(
                    chunk, bad_rows, n_bad, origin, pass_index, start,
                    recorder.current_phase,
                )
            )
        if self.mode == "quarantine":
            recorder.count("rows_quarantined", n_bad)
            recorder.observe("quarantine_batch_rows", n_bad)
            return chunk[~bad_rows]
        recorder.count("rows_repaired", n_bad)
        recorder.count("cells_repaired", int(bad_cells.sum()))
        return self._repair(chunk, bad_cells)

    def _strict_message(
        self, chunk, bad_rows, n_bad, origin, pass_index, start, phase
    ) -> str:
        first = start + int(np.argmax(bad_rows))
        # Route through check_array so the headline matches the message
        # every estimator has always raised for dirty in-memory input.
        try:
            check_array(chunk, name=origin, min_rows=0)
            headline = (
                f"{origin} contains values with magnitude above the "
                f"configured max_abs={self.max_abs:g}."
            )
        except DataValidationError as exc:
            headline = str(exc)
        where = [
            f"pass {pass_index}" if pass_index is not None else "load time",
        ]
        if phase:
            where.append(f"phase {phase!r}")
        where.append(f"chunk offset {start}")
        return (
            f"{headline} [{', '.join(where)}: {n_bad} invalid row(s), "
            f"first at row {first}; rerun with fault policy 'quarantine' "
            f"to drop them or 'repair' to impute them]"
        )

    @staticmethod
    def _repair(chunk: np.ndarray, bad_cells: np.ndarray) -> np.ndarray:
        """Impute invalid cells from the chunk's per-column valid means.

        Columns with no valid cell in the chunk fall back to 0.0 — a
        deterministic, scale-free default for a fully corrupt column.
        """
        valid = ~bad_cells
        sums = np.where(valid, chunk, 0.0).sum(axis=0)
        counts = valid.sum(axis=0)
        means = np.divide(
            sums,
            counts,
            out=np.zeros(chunk.shape[1], dtype=np.float64),
            where=counts > 0,
        )
        repaired = np.where(bad_cells, means[np.newaxis, :], chunk)
        return np.ascontiguousarray(repaired)


#: The shared default policy: fail fast, exactly as the library always has.
STRICT_POLICY = RowQuarantine("strict")

_POLICY: ContextVar[RowQuarantine] = ContextVar(
    "repro_fault_policy", default=STRICT_POLICY
)


def get_fault_policy() -> RowQuarantine:
    """The ambient fault policy (default: the strict singleton)."""
    return _POLICY.get()


def resolve_fault_policy(
    policy: RowQuarantine | str | None,
) -> RowQuarantine:
    """Coerce a policy argument into a :class:`RowQuarantine` instance.

    Parameters
    ----------
    policy:
        ``None`` (use the ambient policy), a mode name from
        :data:`FAULT_POLICY_MODES`, or a ready :class:`RowQuarantine`.
    """
    if policy is None:
        return get_fault_policy()
    if isinstance(policy, RowQuarantine):
        return policy
    if isinstance(policy, str):
        return RowQuarantine(policy)
    raise ParameterError(
        "fault_policy must be None, a mode name "
        f"{FAULT_POLICY_MODES}, or a RowQuarantine; "
        f"got {type(policy).__name__}."
    )


@contextmanager
def use_fault_policy(
    policy: RowQuarantine | str | None,
) -> Iterator[RowQuarantine]:
    """Install ``policy`` as the ambient fault policy for a ``with`` block.

    Streams bind the ambient policy at *construction*, so wrap the code
    that builds them (the pipeline does this for its internal
    ``as_stream`` call).

    Parameters
    ----------
    policy:
        Anything :func:`resolve_fault_policy` accepts; ``None``
        re-installs the current ambient policy (a no-op nesting).
    """
    resolved = resolve_fault_policy(policy)
    token = _POLICY.set(resolved)
    try:
        yield resolved
    finally:
        _POLICY.reset(token)
