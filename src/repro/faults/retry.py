"""Bounded, deterministic retries for transient stream-read failures.

A :class:`RetryPolicy` retries a chunk read a fixed number of times with
a deterministic exponential backoff *schedule*. The schedule is data —
``delays()`` returns it — and sleeping is delegated to an injectable
``sleep`` callable that defaults to ``None`` (no wall-clock sleeps), so
tests exercise the full retry path without ever blocking and production
callers opt into real backoff by passing ``sleep=time.sleep``.

Retryable errors are ``OSError`` (which covers the injected
:class:`~repro.exceptions.TransientIOError`); once the budget is
exhausted the policy raises :class:`~repro.exceptions.StreamReadError`
with the last underlying error attached as ``__cause__``. Every retry
is counted under the ``retries`` observability counter.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.exceptions import ParameterError, StreamReadError
from repro.obs import get_recorder

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY"]

_R = TypeVar("_R")


class RetryPolicy:
    """Bounded retry with a deterministic exponential backoff schedule.

    Parameters
    ----------
    max_retries:
        Number of *re*-attempts after the first failure (0 disables
        retrying: the first transient error is terminal).
    base_delay:
        Backoff before the first retry, in seconds. The default 0.0
        keeps the schedule all-zero, so even a configured ``sleep``
        callable never blocks unless a delay is requested explicitly.
    multiplier:
        Exponential growth factor of the schedule
        (``delay_i = base_delay * multiplier**i``).
    retry_on:
        Exception class (or tuple of classes) treated as transient.
        :class:`~repro.exceptions.StreamReadError` is never retried,
        whatever this says.
    sleep:
        Callable invoked with each positive scheduled delay, or
        ``None`` (the default) to record the schedule without sleeping
        — the mode every test runs in.

    Examples
    --------
    >>> policy = RetryPolicy(max_retries=3, base_delay=0.5)
    >>> policy.delays()
    [0.5, 1.0, 2.0]
    """

    __slots__ = ("max_retries", "base_delay", "multiplier", "retry_on", "sleep")

    def __init__(
        self,
        max_retries: int = 3,
        base_delay: float = 0.0,
        multiplier: float = 2.0,
        retry_on: type | tuple = (OSError,),
        sleep: Callable[[float], object] | None = None,
    ) -> None:
        if max_retries < 0:
            raise ParameterError(
                f"max_retries must be >= 0; got {max_retries}."
            )
        if base_delay < 0:
            raise ParameterError(
                f"base_delay must be >= 0; got {base_delay}."
            )
        if multiplier <= 0:
            raise ParameterError(
                f"multiplier must be > 0; got {multiplier}."
            )
        self.max_retries = int(max_retries)
        self.base_delay = float(base_delay)
        self.multiplier = float(multiplier)
        self.retry_on = retry_on
        self.sleep = sleep

    def delays(self) -> list[float]:
        """The deterministic backoff schedule, one entry per retry."""
        return [
            self.base_delay * self.multiplier**i
            for i in range(self.max_retries)
        ]

    def call(
        self,
        attempt: Callable[[int], _R],
        *,
        describe: str = "stream read",
    ) -> _R:
        """Run ``attempt`` until it succeeds or the budget is exhausted.

        Parameters
        ----------
        attempt:
            Callable receiving the 0-based attempt index; it must be
            idempotent (a retried chunk read re-reads the same chunk).
        describe:
            Short description of the operation, used in the giving-up
            error message.

        Returns
        -------
        Whatever ``attempt`` returns on its first success.

        Raises
        ------
        StreamReadError
            When ``attempt`` raised a retryable error on the initial
            try *and* on every one of ``max_retries`` retries.
        """
        recorder = get_recorder()
        schedule = self.delays()
        for index in range(self.max_retries + 1):
            try:
                return attempt(index)
            except StreamReadError:
                raise
            except self.retry_on as exc:
                if index == self.max_retries:
                    raise StreamReadError(
                        f"{describe} failed after {self.max_retries} "
                        f"retr{'y' if self.max_retries == 1 else 'ies'} "
                        f"(last error: {exc})"
                    ) from exc
                recorder.count("retries")
                delay = schedule[index]
                if self.sleep is not None and delay > 0:
                    self.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover


#: Shared default: 3 sleepless retries — resilient and test-fast.
DEFAULT_RETRY_POLICY = RetryPolicy()
