"""Fault-injecting stream wrapper for chaos testing.

:class:`FaultyStream` wraps any :class:`~repro.utils.streams.DataStream`
(in-memory or file-backed) and injects the faults a
:class:`~repro.faults.FaultPlan` schedules: NaN/Inf rows, corrupted
cells, short reads and transient I/O errors. Injected chunks then flow
through the *same* hardening path every stream applies — a
:class:`~repro.faults.RowQuarantine` policy and a
:class:`~repro.faults.RetryPolicy` — so chaos tests exercise exactly
the code real dirty data would.

Determinism: data faults are keyed by chunk index (persistent — every
pass sees identical damage) and I/O faults by (pass, chunk), so a run
under a fixed seed is byte-identical across invocations and worker
counts. Because fault decisions never depend on the data values, the
surviving-row count is computed at construction and ``n_points`` is
exact before the first pass — the property samplers rely on when they
pre-allocate per-row buffers.

Observability counters (all merged into run manifests):

* ``faults_injected`` — total injected fault events;
* ``fault_rows_injected`` — delivered rows carrying an injected
  invalid value (the number ``rows_quarantined`` must match under the
  quarantine policy when the plan's corruption is detectable);
* ``rows_dropped_short_read`` — rows lost to truncated chunk reads;
* ``io_errors_injected`` — transient read failures raised.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError, TransientIOError
from repro.faults.plan import FaultPlan
from repro.faults.policy import RowQuarantine, resolve_fault_policy
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.obs import get_recorder
from repro.utils.streams import DataStream, as_stream

__all__ = ["FaultyStream"]


class FaultyStream(DataStream):
    """A stream that corrupts its chunks on the way out, then hardens them.

    Parameters
    ----------
    stream:
        The clean source to wrap — a :class:`DataStream`, a file
        stream, or anything ``as_stream`` accepts. Its rows are assumed
        valid under ``fault_policy`` (wrap clean sources; the point is
        controlling the faults).
    plan:
        The seeded :class:`FaultPlan` deciding every injected fault.
    fault_policy:
        Hardening applied after injection: a mode name, a
        :class:`RowQuarantine`, or ``None`` for the ambient policy.
    retry_policy:
        Retry budget for injected transient read failures; defaults to
        the shared sleepless 3-retry policy.
    """

    def __init__(
        self,
        stream,
        plan: FaultPlan,
        fault_policy: RowQuarantine | str | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        inner = as_stream(stream)
        self.inner = inner
        self.plan = plan
        self.fault_policy = resolve_fault_policy(fault_policy)
        self.retry_policy = (
            retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        )
        self.chunk_size = inner.chunk_size
        self.n_dims = inner.n_dims
        self.passes = 0
        self._chunk_lengths = self._layout(inner)
        self.n_points = sum(
            self._survivors(index, length)
            for index, length in enumerate(self._chunk_lengths)
        )
        if self.n_points == 0:
            raise DataValidationError(
                "the fault plan leaves no surviving rows; lower the rates "
                "or the short-read fraction."
            )

    # -- construction-time accounting ----------------------------------------

    @staticmethod
    def _layout(inner: DataStream) -> list[int]:
        """Raw chunk lengths the wrapped stream will deliver per pass."""
        lengths = []
        remaining = inner.n_points
        while remaining > 0:
            lengths.append(min(inner.chunk_size, remaining))
            remaining -= lengths[-1]
        return lengths

    def _survivors(self, chunk_index: int, n_rows: int) -> int:
        """Rows of one chunk that reach consumers under the policy."""
        faults = self.plan.chunk_faults(chunk_index, n_rows, self.n_dims)
        delivered = n_rows - faults.n_truncated
        if self.fault_policy.mode != "quarantine":
            return delivered
        dropped = (
            faults.n_bad_value_rows
            if self.plan.corrupt_detectable_by(self.fault_policy)
            else np.union1d(faults.nan_rows, faults.inf_rows).shape[0]
        )
        return delivered - dropped

    # -- iteration -----------------------------------------------------------

    def __iter__(self):
        for _, chunk in self._iterate():
            yield chunk

    def iter_with_offsets(self):
        """Yield (surviving-row offset, hardened chunk) pairs."""
        yield from self._iterate()

    def materialize(self) -> np.ndarray:
        """All surviving rows as one array (counts as one pass)."""
        parts = [chunk for _, chunk in self._iterate()]
        if not parts:
            return np.empty((0, self.n_dims))
        return np.vstack(parts)

    def _iterate(self):
        self.passes += 1
        pass_index = self.passes
        recorder = get_recorder()
        out = 0
        for chunk_index, (raw_start, chunk) in enumerate(
            self.inner.iter_with_offsets()
        ):
            faulted = self.retry_policy.call(
                self._reader(chunk, pass_index, chunk_index),
                describe=f"chunk {chunk_index} of faulty stream",
            )
            clean = self.fault_policy.apply(
                faulted,
                origin=f"faulty stream (chunk {chunk_index})",
                pass_index=pass_index,
                start=raw_start,
            )
            if clean.shape[0]:
                yield out, clean
                out += clean.shape[0]
        if out != self.n_points:
            raise DataValidationError(
                f"faulty stream yielded {out} surviving rows in pass "
                f"{pass_index} but advertised n_points={self.n_points}; "
                "the wrapped stream is dirty or changed between passes "
                "(wrap a clean source so fault accounting stays exact)."
            )

    def _reader(self, chunk: np.ndarray, pass_index: int, chunk_index: int):
        """One chunk's read attempt: planned transient failures, then data."""
        n_failures = self.plan.io_failures_for(pass_index, chunk_index)

        def attempt(index: int) -> np.ndarray:
            if index < n_failures:
                recorder = get_recorder()
                recorder.count("io_errors_injected")
                recorder.count("faults_injected")
                raise TransientIOError(
                    f"injected transient read failure (pass {pass_index}, "
                    f"chunk {chunk_index}, attempt {index})"
                )
            return self._inject(chunk, chunk_index)

        return attempt

    def _inject(self, chunk: np.ndarray, chunk_index: int) -> np.ndarray:
        """Apply the chunk's planned persistent data faults."""
        faults = self.plan.chunk_faults(
            chunk_index, chunk.shape[0], chunk.shape[1]
        )
        if faults.is_clean:
            return chunk
        recorder = get_recorder()
        faulted = chunk[: chunk.shape[0] - faults.n_truncated].copy()
        if faults.n_truncated:
            recorder.count("rows_dropped_short_read", faults.n_truncated)
            recorder.count("faults_injected", faults.n_truncated)
        if faults.nan_rows.size:
            faulted[faults.nan_rows] = np.nan
        if faults.inf_rows.size:
            faulted[faults.inf_rows] = (
                faults.inf_signs[:, np.newaxis] * np.inf
            )
        if faults.corrupt_rows.size:
            faulted[faults.corrupt_rows, faults.corrupt_cols] = (
                faults.corrupt_values
            )
        n_bad = faults.n_bad_value_rows
        if n_bad:
            recorder.count("fault_rows_injected", n_bad)
            recorder.count("faults_injected", n_bad)
        return faulted
