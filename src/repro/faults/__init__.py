"""repro.faults: fault injection and hardening for dataset streams.

The paper's pipeline is a chain of sequential dataset passes, so one
corrupt chunk or flaky read used to kill a whole run. This package is
both the *chaos* side and the *armor* side of fixing that:

* :class:`FaultPlan` / :class:`FaultyStream` — deterministic, seeded
  fault injection (NaN/Inf rows, corrupted cells, short reads,
  transient I/O errors) that replays byte-identically under a seed;
* :class:`RowQuarantine` — the strict / quarantine / repair policy
  every stream applies to every chunk, installed globally with
  :func:`use_fault_policy` or per stream via the ``fault_policy``
  constructor argument;
* :class:`RetryPolicy` — bounded, deterministically scheduled retries
  for transient read errors, with no wall-clock sleeps unless a
  ``sleep`` callable is supplied.

Quick chaos run::

    from repro.faults import FaultPlan, FaultyStream, RowQuarantine

    stream = FaultyStream(
        data,
        FaultPlan(seed=0, nan_row_rate=0.01),
        fault_policy=RowQuarantine("quarantine"),
    )
    result = ApproximateClusteringPipeline(n_clusters=5).fit(
        None, stream=stream
    )

Counters (``rows_quarantined``, ``rows_repaired``, ``retries``,
``faults_injected``, ...) land in the ambient
:class:`repro.obs.Recorder` and therefore in run manifests.
"""

from repro.faults.injection import FaultyStream
from repro.faults.plan import ChunkFaults, FaultPlan
from repro.faults.policy import (
    FAULT_POLICY_MODES,
    RowQuarantine,
    STRICT_POLICY,
    get_fault_policy,
    resolve_fault_policy,
    use_fault_policy,
)
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "FAULT_POLICY_MODES",
    "ChunkFaults",
    "FaultPlan",
    "FaultyStream",
    "RetryPolicy",
    "RowQuarantine",
    "STRICT_POLICY",
    "get_fault_policy",
    "resolve_fault_policy",
    "use_fault_policy",
]
