"""Fixed-bucket histogram metrics for the observability recorder.

Counters answer "how much in total"; histograms answer "how is it
distributed" — per-chunk KDE evaluation latency, rows per second,
quarantine batch sizes. A :class:`Histogram` is the classic
Prometheus-style fixed-bucket shape: a monotone tuple of upper bucket
bounds plus an overflow bucket, a running count and a running sum.
Buckets are *fixed per metric name* (see
:data:`repro.obs.schema.HISTOGRAM_SCHEMA`), which is what makes two
histograms of the same metric mergeable bucket-by-bucket — the property
the :mod:`repro.parallel` harness relies on when it folds worker
histograms back into the caller's recorder, exactly as it already folds
counters.

Quantiles (p50/p90/p99 in manifests) are estimated by linear
interpolation inside the covering bucket, the same estimate the
Prometheus ``histogram_quantile`` function computes. They are summaries
of a lossy sketch: precision is bucket-bounded by design.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = [
    "DEFAULT_BOUNDS",
    "Histogram",
]

#: Fallback bucket bounds for metrics observed under a name that is not
#: registered in ``HISTOGRAM_SCHEMA`` (the RA008 audit flags such names
#: statically; the runtime stays permissive so a typo cannot crash a
#: production run).
DEFAULT_BOUNDS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
    1000.0, 10000.0, 100000.0, 1000000.0,
)


class Histogram:
    """Mergeable fixed-bucket histogram of one metric.

    Parameters
    ----------
    name:
        Metric name (a key of ``HISTOGRAM_SCHEMA`` for registered
        metrics).
    bounds:
        Strictly increasing upper bucket bounds. An implicit overflow
        bucket catches values above the last bound, so ``counts`` has
        ``len(bounds) + 1`` entries.

    Examples
    --------
    >>> h = Histogram("latency_s", (0.1, 1.0))
    >>> for v in (0.05, 0.2, 0.3, 5.0):
    ...     h.observe(v)
    >>> h.counts
    [1, 2, 1]
    >>> h.count, round(h.sum, 2)
    (4, 5.55)
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum")

    def __init__(self, name: str, bounds: tuple[float, ...]) -> None:
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram bounds must be strictly increasing and "
                f"non-empty; got {bounds!r}."
            )
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts: list[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation (buckets are ``value <= bound``)."""
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    # -- merging -------------------------------------------------------------

    def merge(self, other: "Histogram | dict") -> None:
        """Fold another histogram of the same metric into this one.

        Accepts a :class:`Histogram` or its :meth:`to_dict` form — the
        shape worker recorders ship across process boundaries.

        Parameters
        ----------
        other:
            The histogram to absorb. Its bucket bounds must match.
        """
        if isinstance(other, dict):
            other = Histogram.from_dict(other)
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds "
                f"differ ({other.bounds!r} vs {self.bounds!r})."
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.sum += other.sum

    # -- summaries -----------------------------------------------------------

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile by interpolation inside the bucket.

        Parameters
        ----------
        q:
            Quantile in ``[0, 1]``.

        Returns
        -------
        float
            ``0.0`` for an empty histogram; observations in the overflow
            bucket clamp to the highest bound (the sketch holds no upper
            edge there).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]; got {q}.")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                if i >= len(self.bounds):
                    return self.bounds[-1]
                lo = 0.0 if i == 0 else self.bounds[i - 1]
                hi = self.bounds[i]
                fraction = (rank - cumulative) / n
                return lo + (hi - lo) * min(1.0, max(0.0, fraction))
            cumulative += n
        return self.bounds[-1]

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serialisable form, with p50/p90/p99 summaries included."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    @classmethod
    def from_dict(cls, data: dict, name: str = "") -> "Histogram":
        """Rebuild a histogram from :meth:`to_dict` output.

        Parameters
        ----------
        data:
            Dictionary in the :meth:`to_dict` schema (the quantile
            summaries are recomputed, not trusted).
        name:
            Metric name to attach (dictionaries do not carry it).

        Raises
        ------
        ValueError
            If a required key is missing or the counts length does not
            match the bounds — schema drift across shard workers must
            fail loudly, not silently mis-bin.
        """
        missing = [
            key
            for key in ("bounds", "counts", "count", "sum")
            if key not in data
        ]
        if missing:
            raise ValueError(
                f"histogram {name!r}: payload is missing required "
                f"key(s) {', '.join(repr(k) for k in missing)}; got "
                f"keys {sorted(data)!r}."
            )
        hist = cls(name, tuple(data["bounds"]))
        counts = [int(n) for n in data["counts"]]
        if len(counts) != len(hist.counts):
            raise ValueError(
                f"histogram {name!r}: {len(counts)} bucket counts for "
                f"{len(hist.bounds)} bounds."
            )
        hist.counts = counts
        hist.count = int(data["count"])
        hist.sum = float(data["sum"])
        return hist
