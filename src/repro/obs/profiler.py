"""Opt-in per-span profiling helpers (stdlib-only).

When a :class:`~repro.obs.recorder.Recorder` is created with
``profile=True``, every span runs under a scoped :mod:`cProfile`
profiler. The recorder stack-switches profilers on span entry/exit —
the enclosing span's profiler is paused while a child span runs — so a
span's table attributes the time spent in its *own* code, not its
children's. :func:`profile_summary` reduces one finished profiler to a
compact per-function table; :func:`merge_profiles` aggregates the
tables across a whole span tree for the manifest's top-N summary.

Caveats (see DESIGN.md §12): profiling is wall-clock and therefore
non-deterministic — two runs of the same seed produce identical
counters but different profile timings — and the instrumentation
overhead of cProfile perturbs the timings it reports. Use it for
attribution ("which function dominates this span"), never for
regression gating; the bench gate exists for that.
"""

from __future__ import annotations

import io
import pstats
import tracemalloc
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "merge_profiles",
    "profile_summary",
    "trace_memory",
]

#: Functions kept per span table (sorted by self time, descending).
_TOP_FUNCTIONS = 12


def profile_summary(prof, top: int = _TOP_FUNCTIONS) -> list[dict]:
    """Reduce a finished ``cProfile.Profile`` to a per-function table.

    Parameters
    ----------
    prof:
        A profiler that has been ``disable()``-d.
    top:
        Number of functions to keep, sorted by self time descending.

    Returns
    -------
    list of dict
        Rows ``{"function", "calls", "self_s", "cum_s"}`` where
        ``function`` is ``"file:line(name)"`` with the path reduced to
        its basename.
    """
    stats = pstats.Stats(prof, stream=io.StringIO())
    rows = []
    for (filename, line, name), (_cc, ncalls, tottime, cumtime, _callers) in (
        stats.stats.items()  # type: ignore[attr-defined]
    ):
        if name.startswith("<method 'disable'"):
            continue
        short = filename.rsplit("/", 1)[-1] if "/" in filename else filename
        rows.append(
            {
                "function": f"{short}:{line}({name})",
                "calls": int(ncalls),
                "self_s": float(tottime),
                "cum_s": float(cumtime),
            }
        )
    rows.sort(key=lambda row: (-row["self_s"], row["function"]))
    return rows[: max(0, int(top))]


def merge_profiles(spans: list[dict], top: int = _TOP_FUNCTIONS) -> list[dict]:
    """Aggregate per-span profile tables across a span forest.

    Walks the ``Span.to_dict`` trees, sums ``calls``/``self_s`` per
    function across every span that carries an ``attrs["profile"]``
    table, and returns the overall top-``top`` rows. Cumulative time is
    *not* aggregated — summing ``cum_s`` across spans double-counts
    nested frames — so the merged rows carry only self time.

    Parameters
    ----------
    spans:
        Nested span dictionaries (``Recorder.snapshot()["spans"]``).
    top:
        Number of functions to keep in the merged table.
    """
    totals: dict[str, dict] = {}
    stack = list(spans)
    while stack:
        span = stack.pop()
        for row in span.get("attrs", {}).get("profile", []):
            entry = totals.setdefault(
                row["function"],
                {"function": row["function"], "calls": 0, "self_s": 0.0},
            )
            entry["calls"] += int(row.get("calls", 0))
            entry["self_s"] += float(row.get("self_s", 0.0))
        stack.extend(span.get("children", []))
    rows = sorted(
        totals.values(), key=lambda row: (-row["self_s"], row["function"])
    )
    return rows[: max(0, int(top))]


@contextmanager
def trace_memory() -> Iterator[None]:
    """Enable :mod:`tracemalloc` for a block (no-op if already tracing).

    While tracing is active, every recorder span closes with a
    ``bytes_alloc`` attribute — the net traced-allocation delta across
    the span. Like profiling, the numbers are diagnostic, not
    deterministic, and tracing slows allocation-heavy code noticeably.
    """
    if tracemalloc.is_tracing():
        yield
        return
    tracemalloc.start()
    try:
        yield
    finally:
        tracemalloc.stop()
