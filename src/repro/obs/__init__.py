"""repro.obs: metrics, phase tracing and run manifests.

Zero-dependency observability for the sampling->mining pipeline. Three
pieces:

* :class:`Recorder` — named counters (``data_passes``, ``points_seen``,
  ``kernel_evals``, ``distance_evals``, ``sample_size``,
  ``heap_pushes``, ...) plus a nested tree of timed phase spans.
* :func:`get_recorder` / :func:`use_recorder` / :func:`recording` —
  context-variable plumbing installing a recorder for a block of code;
  the default is a no-op recorder, so instrumentation is free when
  observability is off.
* :class:`RunManifest` — a JSON-lines-serialisable record of one run
  (seed, parameters, versions, platform, all recorded metrics).

Enable from code::

    from repro.obs import recording

    with recording() as rec:
        ApproximateClusteringPipeline(n_clusters=5).fit(data)
    print(rec.counters["data_passes"])        # 4

or from the CLI: ``repro run fig4 --trace --metrics-out metrics.jsonl``.
"""

from repro.obs.manifest import RunManifest, collect_environment
from repro.obs.schema import COUNTER_SCHEMA, CounterSpec, counter_names
from repro.obs.recorder import (
    NULL_RECORDER,
    Recorder,
    Span,
    Stopwatch,
    format_spans,
    get_recorder,
    recording,
    use_recorder,
)

__all__ = [
    "COUNTER_SCHEMA",
    "CounterSpec",
    "NULL_RECORDER",
    "Recorder",
    "RunManifest",
    "Span",
    "Stopwatch",
    "collect_environment",
    "counter_names",
    "format_spans",
    "get_recorder",
    "recording",
    "use_recorder",
]
