"""repro.obs: metrics, tracing, profiling and run manifests.

Zero-dependency observability for the sampling->mining pipeline:

* :class:`Recorder` — named counters (``data_passes``, ``points_seen``,
  ``kernel_evals``, ``distance_evals``, ``sample_size``,
  ``heap_pushes``, ...), fixed-bucket :class:`Histogram` metrics
  (per-chunk KDE latency, quarantine batch sizes) and a nested tree of
  timed phase spans with per-span attributes; opt-in per-span
  profiling via ``Recorder(profile=True)``.
* :func:`get_recorder` / :func:`use_recorder` / :func:`recording` —
  context-variable plumbing installing a recorder for a block of code;
  the default is a no-op recorder, so instrumentation is free when
  observability is off.
* :class:`RunManifest` — a JSON-lines-serialisable record of one run
  (seed, parameters, versions, platform, all recorded metrics),
  versioned and loadable across schema generations.
* Exporters — :func:`to_chrome_trace` (Perfetto-loadable trace-event
  JSON) and :func:`to_prometheus` (text exposition), plus
  :func:`diff_manifests` for phase-by-phase regression checks; all
  three back the ``repro trace`` CLI.

Enable from code::

    from repro.obs import recording

    with recording() as rec:
        ApproximateClusteringPipeline(n_clusters=5).fit(data)
    print(rec.counters["data_passes"])        # 4

or from the CLI: ``repro run fig4 --trace --metrics-out metrics.jsonl``.
"""

from repro.obs.export_chrome import (
    CHROME_TRACE_SCHEMA,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.export_prometheus import (
    parse_prometheus,
    to_prometheus,
    write_prometheus,
)
from repro.obs.histogram import Histogram
from repro.obs.manifest import (
    SCHEMA_VERSION,
    RunManifest,
    collect_environment,
    load_manifests,
)
from repro.obs.profiler import merge_profiles, profile_summary, trace_memory
from repro.obs.recorder import (
    NULL_RECORDER,
    Recorder,
    Span,
    Stopwatch,
    format_spans,
    get_recorder,
    recording,
    use_recorder,
)
from repro.obs.schema import (
    COUNTER_SCHEMA,
    HISTOGRAM_SCHEMA,
    CounterSpec,
    HistogramSpec,
    counter_names,
    histogram_names,
)
from repro.obs.trace_diff import DiffResult, diff_manifests, span_coverage

__all__ = [
    "CHROME_TRACE_SCHEMA",
    "COUNTER_SCHEMA",
    "CounterSpec",
    "DiffResult",
    "HISTOGRAM_SCHEMA",
    "Histogram",
    "HistogramSpec",
    "NULL_RECORDER",
    "Recorder",
    "RunManifest",
    "SCHEMA_VERSION",
    "Span",
    "Stopwatch",
    "collect_environment",
    "counter_names",
    "diff_manifests",
    "format_spans",
    "get_recorder",
    "histogram_names",
    "load_manifests",
    "merge_profiles",
    "parse_prometheus",
    "profile_summary",
    "recording",
    "span_coverage",
    "to_chrome_trace",
    "to_prometheus",
    "trace_memory",
    "use_recorder",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_prometheus",
]
