"""Counters, histograms, timers and phase spans for the pipeline.

The paper's efficiency claims are resource claims — one dataset pass to
fit the estimator, an expected sample size ``b``, runtime competitive
with uniform sampling — and this module turns those resources into
observable quantities. A :class:`Recorder` holds named **counters**
(``data_passes``, ``points_seen``, ``kernel_evals``, ``distance_evals``,
``sample_size``, ``heap_pushes``, ...), fixed-bucket **histograms**
(per-chunk KDE latency, quarantine batch sizes — see
:data:`repro.obs.schema.HISTOGRAM_SCHEMA`) and a tree of timed **spans**
opened with :meth:`Recorder.phase`; library hot paths report into
whatever recorder is currently installed via :func:`get_recorder`.

Spans are hierarchical: each carries a parent link, a start timestamp
relative to the recorder's creation, per-span counter deltas and free
``attrs`` (chunk index, rows processed, worker id, bytes allocated when
:mod:`tracemalloc` is tracing). The tree is what the Chrome-trace
exporter renders and what the profiler hangs per-function attribution
on. Worker recorders produced by :mod:`repro.parallel` ship their spans
and histograms back to the caller, where :meth:`Recorder.adopt_spans`
and :meth:`Recorder.merge_histograms` fold them in deterministically —
the same discipline counters have always followed.

Observability is off by default: the ambient recorder is a no-op
singleton (:data:`NULL_RECORDER`) whose ``count``/``observe``/``phase``
do nothing, so instrumentation costs one context-variable read per call
site when disabled. Install a live recorder for a block of code with
:func:`use_recorder` (or the :func:`recording` shorthand); the context
variable keeps concurrently running recorders isolated per thread and
per async task.

Counter values are pure functions of the algorithm and its seed, so two
runs with identical parameters record identical counters — timers and
latency histograms, of course, are wall-clock and vary.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterable, Iterator

from repro.obs.histogram import DEFAULT_BOUNDS, Histogram
from repro.obs.schema import HISTOGRAM_SCHEMA

__all__ = [
    "NULL_RECORDER",
    "Recorder",
    "Span",
    "Stopwatch",
    "format_spans",
    "get_recorder",
    "recording",
    "use_recorder",
]


class Span:
    """One timed phase: name, timing, counter deltas, attrs, children.

    Spans nest — entering ``phase("draw")`` inside ``phase("sample")``
    attaches the draw span as a child of the sample span and points its
    ``parent`` back at it — and each span records the *delta* of every
    counter that changed while it was open, so per-phase costs can be
    read directly off the tree. ``start`` is seconds since the owning
    recorder was created (wall-clock, not deterministic); ``attrs``
    carries free-form annotations set with :meth:`set` (chunk index,
    rows processed, worker id, ``bytes_alloc`` when tracemalloc is
    tracing, the profiler's per-function table).
    """

    __slots__ = (
        "name",
        "start",
        "elapsed",
        "counters",
        "attrs",
        "children",
        "parent",
        "_t0",
        "_enter",
        "_mem0",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.start: float = 0.0
        self.elapsed: float = 0.0
        self.counters: dict[str, float] = {}
        self.attrs: dict = {}
        self.children: list[Span] = []
        self.parent: Span | None = None
        self._t0: float = 0.0
        self._enter: dict[str, float] = {}
        self._mem0: int | None = None

    def set(self, **attrs) -> "Span":
        """Attach free-form attributes to this span (chainable)."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict:
        """JSON-serialisable nested representation."""
        return {
            "name": self.name,
            "start_s": self.start,
            "elapsed_s": self.elapsed,
            "counters": dict(self.counters),
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a span subtree from :meth:`to_dict` output.

        Tolerant of v1 span dictionaries (no ``start_s``/``attrs``),
        so old manifests keep loading.

        Parameters
        ----------
        data:
            Dictionary in the :meth:`to_dict` schema.
        """
        span = cls(str(data["name"]))
        span.start = float(data.get("start_s", 0.0))
        span.elapsed = float(data.get("elapsed_s", 0.0))
        span.counters = dict(data.get("counters", {}))
        span.attrs = dict(data.get("attrs", {}))
        for child in data.get("children", []):
            node = cls.from_dict(child)
            node.parent = span
            span.children.append(node)
        return span


class Recorder:
    """Collects counters, histograms and a nested span tree for one run.

    Parameters
    ----------
    profile:
        When true, every span runs under a scoped :mod:`cProfile`
        profiler (stack-switched, so a span's profile covers its *own*
        code and not its children's) and closes with a per-function
        attribution table in ``attrs["profile"]``. Opt-in: profiling
        costs real overhead and its timings are wall-clock.

    Examples
    --------
    >>> rec = Recorder()
    >>> with rec.phase("fit_density"):
    ...     rec.count("kernel_evals", 1000)
    >>> rec.counters["kernel_evals"]
    1000
    >>> rec.spans[0].name
    'fit_density'
    """

    enabled: bool = True

    def __init__(self, profile: bool = False) -> None:
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.spans: list[Span] = []
        self.profile = bool(profile)
        self.t0 = time.perf_counter()
        self._stack: list[Span] = []
        self._profilers: list = []

    # -- counters ------------------------------------------------------------

    def count(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name`` (created at zero on first use)."""
        self.counters[name] = self.counters.get(name, 0) + n

    # -- histograms ----------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``.

        Bucket bounds come from ``HISTOGRAM_SCHEMA`` (falling back to
        :data:`repro.obs.histogram.DEFAULT_BOUNDS` for unregistered
        names, which the RA008 audit flags statically).

        Parameters
        ----------
        name:
            Histogram name — a ``HISTOGRAM_SCHEMA`` key.
        value:
            The observed value, in the metric's registered unit.
        """
        hist = self.histograms.get(name)
        if hist is None:
            spec = HISTOGRAM_SCHEMA.get(name)
            bounds = spec.buckets if spec is not None else DEFAULT_BOUNDS
            hist = self.histograms[name] = Histogram(name, bounds)
        hist.observe(value)

    def merge_histograms(self, histograms: dict) -> None:
        """Fold serialised worker histograms into this recorder.

        Parameters
        ----------
        histograms:
            ``{name: Histogram.to_dict()}`` as shipped back by a
            :mod:`repro.parallel` worker. Merged in sorted-name order
            so the fold is deterministic.
        """
        for name in sorted(histograms):
            data = histograms[name]
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = Histogram.from_dict(data, name)
            else:
                mine.merge(data)

    # -- spans ---------------------------------------------------------------

    @contextmanager
    def phase(self, name: str, **attrs) -> Iterator[Span]:
        """Open a timed span; nested calls build a tree.

        Parameters
        ----------
        name:
            Span name (phases aggregate by name in ``timers``).
        **attrs:
            Initial attributes, as for :meth:`Span.set`.
        """
        span = Span(name)
        if attrs:
            span.attrs.update(attrs)
        span._enter = dict(self.counters)
        if tracemalloc.is_tracing():
            span._mem0 = tracemalloc.get_traced_memory()[0]
        self._stack.append(span)
        if self.profile:
            self._push_profiler()
        span.start = time.perf_counter() - self.t0
        span._t0 = time.perf_counter()
        try:
            yield span
        finally:
            span.elapsed = time.perf_counter() - span._t0
            if self.profile:
                self._pop_profiler(span)
            span.counters = {
                key: value - span._enter.get(key, 0)
                for key, value in self.counters.items()
                if value != span._enter.get(key, 0)
            }
            span._enter = {}
            if span._mem0 is not None and tracemalloc.is_tracing():
                span.attrs["bytes_alloc"] = (
                    tracemalloc.get_traced_memory()[0] - span._mem0
                )
            span._mem0 = None
            self._stack.pop()
            if self._stack:
                span.parent = self._stack[-1]
                self._stack[-1].children.append(span)
            else:
                self.spans.append(span)

    def adopt_spans(self, span_dicts: Iterable[dict]) -> None:
        """Attach serialised worker span trees under the open span.

        Called by the :mod:`repro.parallel` harness at fan-in, in task
        submission order, so the adopted forest is deterministic for
        any worker count (timestamps inside adopted spans stay relative
        to the *worker's* recorder; the exporters lay worker tracks out
        separately).

        Parameters
        ----------
        span_dicts:
            ``Span.to_dict()`` trees recorded by a worker recorder.
        """
        for data in span_dicts:
            span = Span.from_dict(data)
            if self._stack:
                span.parent = self._stack[-1]
                self._stack[-1].children.append(span)
            else:
                self.spans.append(span)

    @property
    def current_phase(self) -> str | None:
        """Name of the innermost open span (``None`` outside any phase).

        Lets error paths report *where* in the pipeline a failure
        happened — e.g. a strict fault policy naming the dataset pass
        whose chunk carried the bad rows.
        """
        return self._stack[-1].name if self._stack else None

    @property
    def timers(self) -> dict[str, float]:
        """Total elapsed seconds per span name, aggregated over the tree."""
        totals: dict[str, float] = {}
        stack = list(self.spans)
        while stack:
            span = stack.pop()
            totals[span.name] = totals.get(span.name, 0.0) + span.elapsed
            stack.extend(span.children)
        return totals

    # -- profiling -----------------------------------------------------------

    def _push_profiler(self) -> None:
        """Pause the enclosing span's profiler and start a fresh one."""
        import cProfile

        if self._profilers:
            self._profilers[-1].disable()
        prof = cProfile.Profile()
        self._profilers.append(prof)
        prof.enable()

    def _pop_profiler(self, span: Span) -> None:
        """Stop the span's profiler, attach its table, resume the parent."""
        from repro.obs.profiler import profile_summary

        prof = self._profilers.pop()
        prof.disable()
        table = profile_summary(prof)
        if table:
            span.attrs["profile"] = table
        if self._profilers:
            self._profilers[-1].enable()

    # -- export --------------------------------------------------------------

    def snapshot(self) -> dict:
        """Counters, histograms, timers and the span tree as plain dicts."""
        return {
            "counters": dict(self.counters),
            "histograms": {
                name: hist.to_dict()
                for name, hist in sorted(self.histograms.items())
            },
            "timers": self.timers,
            "spans": [span.to_dict() for span in self.spans],
        }


class _NullSpan:
    """Reusable no-op span returned by the null recorder.

    Mirrors the attribute surface instrumented code touches
    (:meth:`set`, ``elapsed``, ``attrs``) so call sites never branch on
    whether observability is enabled.
    """

    __slots__ = ()

    #: Disabled spans never accumulate time.
    elapsed = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullRecorder(Recorder):
    """Disabled recorder: every operation is a no-op.

    The module-level default, so instrumented library code pays one
    attribute call and nothing else when observability is off. It never
    accumulates state — ``counters``, ``histograms`` and ``spans`` stay
    empty.
    """

    enabled = False

    def count(self, name: str, n: float = 1) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def merge_histograms(self, histograms: dict) -> None:
        return None

    def adopt_spans(self, span_dicts: Iterable[dict]) -> None:
        return None

    def phase(self, name: str, **attrs) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def snapshot(self) -> dict:
        return {"counters": {}, "histograms": {}, "timers": {}, "spans": []}


#: The shared disabled recorder installed by default.
NULL_RECORDER = NullRecorder()

_RECORDER: ContextVar[Recorder] = ContextVar(
    "repro_obs_recorder", default=NULL_RECORDER
)


def get_recorder() -> Recorder:
    """The recorder currently installed for this thread/task.

    Returns :data:`NULL_RECORDER` (all operations no-ops) unless a
    recorder was installed with :func:`use_recorder` or
    :func:`recording`.
    """
    return _RECORDER.get()


@contextmanager
def use_recorder(recorder: Recorder) -> Iterator[Recorder]:
    """Install ``recorder`` as the ambient recorder for a ``with`` block.

    Built on a context variable, so concurrent threads and async tasks
    that install their own recorders never observe each other's counts.

    Parameters
    ----------
    recorder:
        The recorder library code should report into inside the block.
    """
    token = _RECORDER.set(recorder)
    try:
        yield recorder
    finally:
        _RECORDER.reset(token)


@contextmanager
def recording(profile: bool = False) -> Iterator[Recorder]:
    """Create a fresh :class:`Recorder` and install it for the block.

    Parameters
    ----------
    profile:
        Forwarded to :class:`Recorder` — every span additionally runs
        under a scoped profiler.

    Examples
    --------
    >>> from repro.obs import recording
    >>> with recording() as rec:
    ...     rec.count("sample_size", 3)
    >>> rec.counters
    {'sample_size': 3}
    """
    with use_recorder(Recorder(profile=profile)) as recorder:
        yield recorder


class Stopwatch:
    """Minimal elapsed-wall-time context manager.

    The sanctioned way for library code to measure a duration without
    opening a recorder span (experiments report raw seconds in their
    tables). ``elapsed`` is valid after the block exits.

    Examples
    --------
    >>> with Stopwatch() as watch:
    ...     pass
    >>> watch.elapsed >= 0.0
    True
    """

    __slots__ = ("elapsed", "_t0")

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._t0: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._t0


def format_spans(spans: list[dict], indent: int = 0) -> str:
    """Render a span tree (``Span.to_dict`` form) as an indented text tree.

    Parameters
    ----------
    spans:
        List of nested span dictionaries, as produced by
        :meth:`Span.to_dict` / :meth:`Recorder.snapshot`.
    indent:
        Current indentation level (used by the recursion).
    """
    lines = []
    for span in spans:
        counters = " ".join(
            f"{key}={_fmt_count(value)}"
            for key, value in sorted(span.get("counters", {}).items())
        )
        pad = "  " * indent
        head = f"{pad}{span['name']:<{max(1, 28 - len(pad))}} {span['elapsed_s']:8.3f}s"
        lines.append(f"{head}  {counters}".rstrip())
        child_text = format_spans(span.get("children", []), indent + 1)
        if child_text:
            lines.append(child_text)
    return "\n".join(lines)


def _fmt_count(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
