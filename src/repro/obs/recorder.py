"""Counters, timers and phase spans for the sampling->mining pipeline.

The paper's efficiency claims are resource claims — one dataset pass to
fit the estimator, an expected sample size ``b``, runtime competitive
with uniform sampling — and this module turns those resources into
observable quantities. A :class:`Recorder` holds named **counters**
(``data_passes``, ``points_seen``, ``kernel_evals``, ``distance_evals``,
``sample_size``, ``heap_pushes``, ...) and a tree of timed **spans**
opened with :meth:`Recorder.phase`; library hot paths report into
whatever recorder is currently installed via :func:`get_recorder`.

Observability is off by default: the ambient recorder is a no-op
singleton (:data:`NULL_RECORDER`) whose ``count``/``phase`` do nothing,
so instrumentation costs one context-variable read per call site when
disabled. Install a live recorder for a block of code with
:func:`use_recorder` (or the :func:`recording` shorthand); the context
variable keeps concurrently running recorders isolated per thread and
per async task.

Counter values are pure functions of the algorithm and its seed, so two
runs with identical parameters record identical counters — timers, of
course, are wall-clock and vary.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

__all__ = [
    "NULL_RECORDER",
    "Recorder",
    "Span",
    "Stopwatch",
    "format_spans",
    "get_recorder",
    "recording",
    "use_recorder",
]


class Span:
    """One timed phase: name, elapsed seconds, counter deltas, children.

    Spans nest — entering ``phase("draw")`` inside ``phase("sample")``
    attaches the draw span as a child of the sample span — and each span
    records the *delta* of every counter that changed while it was open,
    so per-phase costs can be read directly off the tree.
    """

    __slots__ = ("name", "elapsed", "counters", "children", "_t0", "_enter")

    def __init__(self, name: str) -> None:
        self.name = name
        self.elapsed: float = 0.0
        self.counters: dict[str, float] = {}
        self.children: list[Span] = []
        self._t0: float = 0.0
        self._enter: dict[str, float] = {}

    def to_dict(self) -> dict:
        """JSON-serialisable nested representation."""
        return {
            "name": self.name,
            "elapsed_s": self.elapsed,
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }


class Recorder:
    """Collects named counters and a nested span tree for one run.

    Examples
    --------
    >>> rec = Recorder()
    >>> with rec.phase("fit_density"):
    ...     rec.count("kernel_evals", 1000)
    >>> rec.counters["kernel_evals"]
    1000
    >>> rec.spans[0].name
    'fit_density'
    """

    enabled: bool = True

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.spans: list[Span] = []
        self._stack: list[Span] = []

    # -- counters ------------------------------------------------------------

    def count(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name`` (created at zero on first use)."""
        self.counters[name] = self.counters.get(name, 0) + n

    # -- spans ---------------------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[Span]:
        """Open a timed span; nested calls build a tree."""
        span = Span(name)
        span._enter = dict(self.counters)
        self._stack.append(span)
        span._t0 = time.perf_counter()
        try:
            yield span
        finally:
            span.elapsed = time.perf_counter() - span._t0
            span.counters = {
                key: value - span._enter.get(key, 0)
                for key, value in self.counters.items()
                if value != span._enter.get(key, 0)
            }
            span._enter = {}
            self._stack.pop()
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self.spans.append(span)

    @property
    def current_phase(self) -> str | None:
        """Name of the innermost open span (``None`` outside any phase).

        Lets error paths report *where* in the pipeline a failure
        happened — e.g. a strict fault policy naming the dataset pass
        whose chunk carried the bad rows.
        """
        return self._stack[-1].name if self._stack else None

    @property
    def timers(self) -> dict[str, float]:
        """Total elapsed seconds per span name, aggregated over the tree."""
        totals: dict[str, float] = {}
        stack = list(self.spans)
        while stack:
            span = stack.pop()
            totals[span.name] = totals.get(span.name, 0.0) + span.elapsed
            stack.extend(span.children)
        return totals

    # -- export --------------------------------------------------------------

    def snapshot(self) -> dict:
        """Counters, aggregated timers and the span tree as plain dicts."""
        return {
            "counters": dict(self.counters),
            "timers": self.timers,
            "spans": [span.to_dict() for span in self.spans],
        }


class _NullSpan:
    """Reusable no-op context manager returned by the null recorder."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder(Recorder):
    """Disabled recorder: every operation is a no-op.

    The module-level default, so instrumented library code pays one
    attribute call and nothing else when observability is off. It never
    accumulates state — ``counters`` and ``spans`` stay empty.
    """

    enabled = False

    def count(self, name: str, n: float = 1) -> None:
        return None

    def phase(self, name: str) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def snapshot(self) -> dict:
        return {"counters": {}, "timers": {}, "spans": []}


#: The shared disabled recorder installed by default.
NULL_RECORDER = NullRecorder()

_RECORDER: ContextVar[Recorder] = ContextVar(
    "repro_obs_recorder", default=NULL_RECORDER
)


def get_recorder() -> Recorder:
    """The recorder currently installed for this thread/task.

    Returns :data:`NULL_RECORDER` (all operations no-ops) unless a
    recorder was installed with :func:`use_recorder` or
    :func:`recording`.
    """
    return _RECORDER.get()


@contextmanager
def use_recorder(recorder: Recorder) -> Iterator[Recorder]:
    """Install ``recorder`` as the ambient recorder for a ``with`` block.

    Built on a context variable, so concurrent threads and async tasks
    that install their own recorders never observe each other's counts.

    Parameters
    ----------
    recorder:
        The recorder library code should report into inside the block.
    """
    token = _RECORDER.set(recorder)
    try:
        yield recorder
    finally:
        _RECORDER.reset(token)


@contextmanager
def recording() -> Iterator[Recorder]:
    """Create a fresh :class:`Recorder` and install it for the block.

    Examples
    --------
    >>> from repro.obs import recording
    >>> with recording() as rec:
    ...     rec.count("sample_size", 3)
    >>> rec.counters
    {'sample_size': 3}
    """
    with use_recorder(Recorder()) as recorder:
        yield recorder


class Stopwatch:
    """Minimal elapsed-wall-time context manager.

    The sanctioned way for library code to measure a duration without
    opening a recorder span (experiments report raw seconds in their
    tables). ``elapsed`` is valid after the block exits.

    Examples
    --------
    >>> with Stopwatch() as watch:
    ...     pass
    >>> watch.elapsed >= 0.0
    True
    """

    __slots__ = ("elapsed", "_t0")

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._t0: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._t0


def format_spans(spans: list[dict], indent: int = 0) -> str:
    """Render a span tree (``Span.to_dict`` form) as an indented text tree.

    Parameters
    ----------
    spans:
        List of nested span dictionaries, as produced by
        :meth:`Span.to_dict` / :meth:`Recorder.snapshot`.
    indent:
        Current indentation level (used by the recursion).
    """
    lines = []
    for span in spans:
        counters = " ".join(
            f"{key}={_fmt_count(value)}"
            for key, value in sorted(span.get("counters", {}).items())
        )
        pad = "  " * indent
        head = f"{pad}{span['name']:<{max(1, 28 - len(pad))}} {span['elapsed_s']:8.3f}s"
        lines.append(f"{head}  {counters}".rstrip())
        child_text = format_spans(span.get("children", []), indent + 1)
        if child_text:
            lines.append(child_text)
    return "\n".join(lines)


def _fmt_count(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
