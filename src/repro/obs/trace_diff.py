"""Phase-by-phase comparison of two run manifests.

``repro trace diff A.json B.json`` answers the question every perf PR
asks: did anything regress between these two runs? The comparison has
two halves with very different semantics:

* **Counters are exact.** Counter totals are deterministic functions of
  (code, parameters, seed), so any difference is a real behavioural
  change — the serial-vs-parallel CI check runs with ``counters_only``
  and expects byte-equality.
* **Timers are budgeted.** Wall-clock varies across machines and runs,
  so per-phase timings compare as ratios against a noise budget (the
  same ``2.0×`` philosophy as ``tools/bench_gate.py``): a phase is
  *regressed* only when it slowed by more than the budget, *improved*
  when it sped up by more than the budget, *unchanged* otherwise.

:func:`span_coverage` is the attribution metric from the acceptance
criteria: for each phase span with children, the fraction of its wall
time covered by named child spans — low coverage means untraced time
hiding inside a phase.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field

from repro.obs.manifest import RunManifest

__all__ = [
    "DiffResult",
    "diff_manifests",
    "span_coverage",
]

#: Phases faster than this (seconds) in both runs are never flagged:
#: at sub-millisecond scales the timer ratio is pure noise.
_MIN_PHASE_SECONDS = 0.005


@dataclass
class DiffResult:
    """Outcome of comparing two manifests.

    Attributes
    ----------
    verdict:
        ``"regressed"`` if any counter differs or any phase slowed
        beyond budget; else ``"improved"`` if at least one phase beat
        the budget; else ``"unchanged"``.
    counter_diffs:
        ``(name, value_a, value_b)`` for every differing counter
        (missing counters appear as ``None``).
    phase_verdicts:
        ``(phase, seconds_a, seconds_b, verdict)`` per phase name.
    """

    verdict: str = "unchanged"
    counter_diffs: list[tuple] = field(default_factory=list)
    phase_verdicts: list[tuple] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """Process exit code: 0 unchanged/improved, 1 regressed."""
        return 1 if self.verdict == "regressed" else 0

    def format(self) -> str:
        """Human-readable report, one line per finding."""
        lines = []
        for name, a, b in self.counter_diffs:
            lines.append(f"counter {name}: {a!r} -> {b!r}  [CHANGED]")
        for phase, a, b, verdict in self.phase_verdicts:
            if verdict == "unchanged":
                continue
            lines.append(
                f"phase {phase}: {a:.4f}s -> {b:.4f}s  [{verdict.upper()}]"
            )
        lines.append(f"verdict: {self.verdict}")
        return "\n".join(lines)


def diff_manifests(
    a: RunManifest,
    b: RunManifest,
    budget: float = 2.0,
    counters_only: bool = False,
    ignore: tuple[str, ...] = (),
) -> DiffResult:
    """Compare manifest ``b`` against baseline ``a``.

    Parameters
    ----------
    a:
        Baseline manifest.
    b:
        Candidate manifest.
    budget:
        Multiplicative noise budget for phase timings: a phase regresses
        when ``b > a * budget`` and improves when ``b < a / budget``.
    counters_only:
        Skip the timer comparison entirely (the CI determinism check:
        serial vs parallel runs share counters but not wall-clock).
    ignore:
        ``fnmatch`` patterns of counter names excluded from the
        comparison — e.g. ``("shard*",)`` when diffing a sharded run
        against a serial baseline, where the shard bookkeeping counters
        exist on one side only by construction.

    Returns
    -------
    DiffResult
    """
    if budget <= 1.0:
        raise ValueError(f"budget must be > 1.0; got {budget}.")
    result = DiffResult()
    for name in sorted(set(a.counters) | set(b.counters)):
        if any(fnmatch.fnmatch(name, pattern) for pattern in ignore):
            continue
        va, vb = a.counters.get(name), b.counters.get(name)
        if va != vb:
            result.counter_diffs.append((name, va, vb))

    regressed = bool(result.counter_diffs)
    improved = False
    if not counters_only:
        for phase in sorted(set(a.timers) | set(b.timers)):
            ta = float(a.timers.get(phase, 0.0))
            tb = float(b.timers.get(phase, 0.0))
            if max(ta, tb) < _MIN_PHASE_SECONDS:
                verdict = "unchanged"
            elif ta == 0.0:
                verdict = "regressed"  # phase appeared in the candidate
            elif tb > ta * budget:
                verdict = "regressed"
            elif tb < ta / budget:
                verdict = "improved"
            else:
                verdict = "unchanged"
            result.phase_verdicts.append((phase, ta, tb, verdict))
            regressed = regressed or verdict == "regressed"
            improved = improved or verdict == "improved"

    if regressed:
        result.verdict = "regressed"
    elif improved:
        result.verdict = "improved"
    return result


def span_coverage(manifest: RunManifest) -> dict[str, float]:
    """Fraction of each parent span's time attributed to named children.

    Walks the span tree; for every span that has children and ran for a
    non-trivial time, reports ``sum(child elapsed) / parent elapsed``
    (clamped to 1.0 — timer granularity can push the sum slightly
    over). Leaf spans are by definition fully attributed and are not
    reported.

    Parameters
    ----------
    manifest:
        The manifest whose ``spans`` to analyse.

    Returns
    -------
    dict
        ``{span_name: coverage}`` with the *minimum* coverage kept when
        a name recurs (the weakest link is what matters).
    """
    coverage: dict[str, float] = {}
    stack = list(manifest.spans)
    while stack:
        span = stack.pop()
        children = span.get("children", [])
        stack.extend(children)
        elapsed = float(span.get("elapsed_s", 0.0))
        if not children or elapsed < _MIN_PHASE_SECONDS:
            continue
        covered = sum(float(c.get("elapsed_s", 0.0)) for c in children)
        fraction = min(1.0, covered / elapsed)
        name = span["name"]
        coverage[name] = min(coverage.get(name, 1.0), fraction)
    return coverage
