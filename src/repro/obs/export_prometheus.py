"""Prometheus/OpenMetrics text exposition from a run manifest.

Renders a :class:`~repro.obs.manifest.RunManifest` as the Prometheus
text exposition format: counters as ``repro_<name>_total``, per-phase
timer totals as a ``repro_phase_seconds`` gauge labelled by phase, and
each histogram as the standard cumulative ``_bucket{le=...}`` series
with ``_sum``/``_count``. Every sample carries a ``run`` label with the
manifest name so scrapes from several runs concatenate safely.

This is an *export of a finished run*, not a live scrape endpoint — the
future ``repro serve`` layer will mount the same rendering behind HTTP.
:func:`parse_prometheus` is the minimal inverse used by the round-trip
tests and by ``repro trace export --validate``: it understands exactly
the subset this module emits (HELP/TYPE comments, labelled samples)
and hands back ``{metric: {labels_tuple: value}}``.
"""

from __future__ import annotations

import math
from pathlib import Path

from repro.obs.histogram import Histogram
from repro.obs.manifest import RunManifest
from repro.obs.schema import COUNTER_SCHEMA, HISTOGRAM_SCHEMA

__all__ = [
    "parse_prometheus",
    "to_prometheus",
    "write_prometheus",
]

_PREFIX = "repro"


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _fmt(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_prometheus(manifest: RunManifest) -> str:
    """Render ``manifest`` in the Prometheus text exposition format.

    Parameters
    ----------
    manifest:
        The manifest whose counters/timers/histograms to expose.

    Returns
    -------
    str
        Exposition text, terminated by a newline.
    """
    run = _escape_label(manifest.name)
    lines: list[str] = []

    for name in sorted(manifest.counters):
        metric = f"{_PREFIX}_{name}_total"
        spec = COUNTER_SCHEMA.get(name)
        if spec is not None:
            lines.append(f"# HELP {metric} {spec.meaning}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(
            f'{metric}{{run="{run}"}} {_fmt(manifest.counters[name])}'
        )

    if manifest.timers:
        metric = f"{_PREFIX}_phase_seconds"
        lines.append(
            f"# HELP {metric} total wall seconds per recorder phase"
        )
        lines.append(f"# TYPE {metric} gauge")
        for phase in sorted(manifest.timers):
            lines.append(
                f'{metric}{{run="{run}",phase="{_escape_label(phase)}"}} '
                f"{_fmt(manifest.timers[phase])}"
            )

    for name in sorted(manifest.histograms):
        hist = Histogram.from_dict(manifest.histograms[name], name)
        metric = f"{_PREFIX}_{name}"
        spec = HISTOGRAM_SCHEMA.get(name)
        if spec is not None:
            lines.append(f"# HELP {metric} {spec.meaning}")
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{run="{run}",le="{_fmt(bound)}"}} '
                f"{cumulative}"
            )
        lines.append(
            f'{metric}_bucket{{run="{run}",le="+Inf"}} {hist.count}'
        )
        lines.append(f'{metric}_sum{{run="{run}"}} {_fmt(hist.sum)}')
        lines.append(f'{metric}_count{{run="{run}"}} {hist.count}')

    return "\n".join(lines) + "\n"


def write_prometheus(manifest: RunManifest, path: str | Path) -> None:
    """Export ``manifest`` as Prometheus text at ``path``."""
    Path(path).write_text(to_prometheus(manifest), encoding="utf-8")


def parse_prometheus(text: str) -> dict[str, dict[tuple, float]]:
    """Parse the subset of the exposition format this module emits.

    Parameters
    ----------
    text:
        Exposition text (comments and blank lines are skipped).

    Returns
    -------
    dict
        ``{metric_name: {((label, value), ...): sample_value}}`` with
        label tuples sorted by label name.

    Raises
    ------
    ValueError
        On a line that is neither a comment nor a valid sample.
    """
    samples: dict[str, dict[tuple, float]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"line {lineno}: no metric/value split: {raw!r}")
        labels: tuple = ()
        metric = name_part
        if "{" in name_part:
            if not name_part.endswith("}"):
                raise ValueError(f"line {lineno}: unterminated labels: {raw!r}")
            metric, _, label_blob = name_part.partition("{")
            pairs = []
            for item in _split_labels(label_blob[:-1]):
                key, _, quoted = item.partition("=")
                if not (quoted.startswith('"') and quoted.endswith('"')):
                    raise ValueError(
                        f"line {lineno}: unquoted label value: {raw!r}"
                    )
                pairs.append(
                    (
                        key,
                        quoted[1:-1]
                        .replace("\\n", "\n")
                        .replace('\\"', '"')
                        .replace("\\\\", "\\"),
                    )
                )
            labels = tuple(sorted(pairs))
        if value_part == "+Inf":
            value = float("inf")
        elif value_part == "-Inf":
            value = float("-inf")
        else:
            value = float(value_part)
        samples.setdefault(metric, {})[labels] = value
    return samples


def _split_labels(blob: str) -> list[str]:
    """Split ``k1="v1",k2="v2"`` on commas outside quoted values."""
    items: list[str] = []
    depth_quote = False
    current = []
    i = 0
    while i < len(blob):
        ch = blob[i]
        if ch == "\\" and depth_quote and i + 1 < len(blob):
            current.append(ch)
            current.append(blob[i + 1])
            i += 2
            continue
        if ch == '"':
            depth_quote = not depth_quote
        if ch == "," and not depth_quote:
            items.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    if current:
        items.append("".join(current))
    return items
