"""Run manifests: one JSON-lines record per run, with all metrics.

A :class:`RunManifest` captures everything needed to interpret (and
re-run) one experiment or pipeline execution: the run name, the seed and
parameters, package/platform versions, and the recorder's counters,
histograms, timers and span tree. Manifests serialise to a single JSON
line so a file of them is an append-only log that trivially concatenates
across runs and machines; :meth:`RunManifest.emit` writes that line to
stderr, a path, an open stream, or hands the dict to a callable sink.

Manifests are versioned: ``schema_version`` is 2 as of the telemetry
pipeline (histograms, span attrs/timestamps, profile tables); documents
without the field are treated as v1 and :meth:`RunManifest.from_dict`
loads them tolerantly — unknown keys are ignored, missing sections
default to empty — so old metrics files keep loading forever.

No wall-clock timestamp is recorded: manifests are deliberately a pure
function of (code, parameters, seed) plus wall-time measurements, so two
runs of the same configuration produce manifests whose *counters*
compare equal — the determinism contract the tests pin.
"""

from __future__ import annotations

import json
import platform as _platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Callable, Union

from repro.obs.recorder import Recorder

__all__ = [
    "SCHEMA_VERSION",
    "RunManifest",
    "collect_environment",
    "load_manifests",
]

#: Current manifest schema version. v1: counters/timers/spans only.
#: v2: adds ``schema_version``, ``histograms`` (with p50/p90/p99
#: summaries) and the aggregated ``profile`` table; spans gain
#: ``start_s`` and ``attrs``.
SCHEMA_VERSION = 2

#: Accepted ``emit`` sinks: None (stderr), a path, an open text stream,
#: or a callable receiving the manifest dictionary.
ManifestSink = Union[None, str, Path, IO[str], Callable[[dict], object]]


def collect_environment() -> dict:
    """Interpreter, platform and package versions for provenance.

    >>> env = collect_environment()
    >>> sorted(env) == ['numpy', 'platform', 'python', 'repro']
    True
    """
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    repro = sys.modules.get("repro")
    return {
        "python": _platform.python_version(),
        "platform": _platform.platform(),
        "numpy": numpy_version,
        "repro": getattr(repro, "__version__", None),
    }


@dataclass
class RunManifest:
    """Structured record of one observed run.

    Attributes
    ----------
    name:
        Run identifier (experiment id, pipeline name, bench id, ...).
    seed:
        Base random seed of the run (``None`` when not applicable).
    params:
        Run parameters beyond the seed (scale, sample size, ...).
    environment:
        Versions and platform, from :func:`collect_environment`.
    counters:
        Final counter totals from the recorder.
    histograms:
        Histogram sketches (``Histogram.to_dict`` per metric name,
        including p50/p90/p99 summaries).
    timers:
        Total elapsed seconds per span name.
    spans:
        Nested span tree (list of ``Span.to_dict`` dictionaries).
    profile:
        Aggregated per-function attribution across the span tree
        (present only for ``--profile`` runs).
    schema_version:
        Manifest schema version this document was written with.
    """

    name: str
    seed: int | None = None
    params: dict = field(default_factory=dict)
    environment: dict = field(default_factory=collect_environment)
    counters: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    timers: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)
    profile: list = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION

    @classmethod
    def from_recorder(
        cls,
        recorder: Recorder,
        name: str,
        seed: int | None = None,
        params: dict | None = None,
    ) -> "RunManifest":
        """Build a manifest from a recorder's current state.

        Parameters
        ----------
        recorder:
            The recorder whose counters/timers/spans to capture.
        name:
            Run identifier stored in the manifest.
        seed:
            Base random seed of the run.
        params:
            Extra run parameters worth preserving.
        """
        from repro.obs.profiler import merge_profiles

        snap = recorder.snapshot()
        return cls(
            name=name,
            seed=seed,
            params=dict(params or {}),
            counters=snap["counters"],
            histograms=snap.get("histograms", {}),
            timers=snap["timers"],
            spans=snap["spans"],
            profile=merge_profiles(snap["spans"]),
        )

    @property
    def elapsed(self) -> float | None:
        """Wall seconds of the root span (``None`` without spans)."""
        if not self.spans:
            return None
        return float(sum(span["elapsed_s"] for span in self.spans))

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form (inverse of :meth:`from_dict`)."""
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "seed": self.seed,
            "params": dict(self.params),
            "environment": dict(self.environment),
            "counters": dict(self.counters),
            "histograms": dict(self.histograms),
            "timers": dict(self.timers),
            "spans": list(self.spans),
            "profile": list(self.profile),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_dict` output.

        Tolerant by contract: unknown keys are ignored, missing sections
        default to empty, and a document without ``schema_version`` is a
        v1 manifest (pre-histogram/span-attr era) and loads with empty
        histograms and profile.

        Parameters
        ----------
        data:
            Dictionary in the :meth:`to_dict` schema (any version).
        """
        return cls(
            name=data["name"],
            seed=data.get("seed"),
            params=dict(data.get("params", {})),
            environment=dict(data.get("environment", {})),
            counters=dict(data.get("counters", {})),
            histograms=dict(data.get("histograms", {})),
            timers=dict(data.get("timers", {})),
            spans=list(data.get("spans", [])),
            profile=list(data.get("profile", [])),
            schema_version=int(data.get("schema_version", 1)),
        )

    def to_json(self) -> str:
        """One JSON line (no internal newlines), ready for a .jsonl file."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "RunManifest":
        """Parse one JSON line produced by :meth:`to_json`.

        Parameters
        ----------
        line:
            The JSON document to parse.
        """
        return cls.from_dict(json.loads(line))

    # -- sinks ---------------------------------------------------------------

    def emit(self, sink: ManifestSink = None) -> None:
        """Write this manifest to ``sink`` as one JSON line.

        Parameters
        ----------
        sink:
            ``None`` writes to stderr; a string or :class:`~pathlib.Path`
            appends to that file (created if missing); an object with a
            ``write`` method receives the line; any other callable is
            invoked with the manifest dictionary.
        """
        if callable(getattr(sink, "write", None)):
            sink.write(self.to_json() + "\n")
            return
        if callable(sink):
            sink(self.to_dict())
            return
        if sink is None:
            sys.stderr.write(self.to_json() + "\n")
            return
        with open(sink, "a", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")


def load_manifests(path: str | Path) -> list[RunManifest]:
    """Load every manifest stored in ``path``.

    Accepts both on-disk shapes the repo produces: a ``.jsonl``
    append-only log (one manifest per line, from :meth:`RunManifest.emit`)
    and a single pretty-printed JSON document (the per-bench metrics
    files the benchmark suite writes).

    Parameters
    ----------
    path:
        File to read. Blank lines are skipped.

    Returns
    -------
    list of RunManifest
        In file order; empty for an empty file.
    """
    text = Path(path).read_text(encoding="utf-8").strip()
    if not text:
        return []
    if text.startswith("{") and "\n{" not in text:
        # One document — possibly pretty-printed across many lines.
        return [RunManifest.from_dict(json.loads(text))]
    return [
        RunManifest.from_json(line)
        for line in text.splitlines()
        if line.strip()
    ]
