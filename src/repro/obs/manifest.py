"""Run manifests: one JSON-lines record per run, with all metrics.

A :class:`RunManifest` captures everything needed to interpret (and
re-run) one experiment or pipeline execution: the run name, the seed and
parameters, package/platform versions, and the recorder's counters,
timers and span tree. Manifests serialise to a single JSON line so a
file of them is an append-only log that trivially concatenates across
runs and machines; :meth:`RunManifest.emit` writes that line to stderr,
a path, an open stream, or hands the dict to a callable sink.

No wall-clock timestamp is recorded: manifests are deliberately a pure
function of (code, parameters, seed) plus wall-time measurements, so two
runs of the same configuration produce manifests whose *counters*
compare equal — the determinism contract the tests pin.
"""

from __future__ import annotations

import json
import platform as _platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Callable, Union

from repro.obs.recorder import Recorder

__all__ = [
    "RunManifest",
    "collect_environment",
]

#: Accepted ``emit`` sinks: None (stderr), a path, an open text stream,
#: or a callable receiving the manifest dictionary.
ManifestSink = Union[None, str, Path, IO[str], Callable[[dict], object]]


def collect_environment() -> dict:
    """Interpreter, platform and package versions for provenance.

    >>> env = collect_environment()
    >>> sorted(env) == ['numpy', 'platform', 'python', 'repro']
    True
    """
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    repro = sys.modules.get("repro")
    return {
        "python": _platform.python_version(),
        "platform": _platform.platform(),
        "numpy": numpy_version,
        "repro": getattr(repro, "__version__", None),
    }


@dataclass
class RunManifest:
    """Structured record of one observed run.

    Attributes
    ----------
    name:
        Run identifier (experiment id, pipeline name, bench id, ...).
    seed:
        Base random seed of the run (``None`` when not applicable).
    params:
        Run parameters beyond the seed (scale, sample size, ...).
    environment:
        Versions and platform, from :func:`collect_environment`.
    counters:
        Final counter totals from the recorder.
    timers:
        Total elapsed seconds per span name.
    spans:
        Nested span tree (list of ``Span.to_dict`` dictionaries).
    """

    name: str
    seed: int | None = None
    params: dict = field(default_factory=dict)
    environment: dict = field(default_factory=collect_environment)
    counters: dict = field(default_factory=dict)
    timers: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)

    @classmethod
    def from_recorder(
        cls,
        recorder: Recorder,
        name: str,
        seed: int | None = None,
        params: dict | None = None,
    ) -> "RunManifest":
        """Build a manifest from a recorder's current state.

        Parameters
        ----------
        recorder:
            The recorder whose counters/timers/spans to capture.
        name:
            Run identifier stored in the manifest.
        seed:
            Base random seed of the run.
        params:
            Extra run parameters worth preserving.
        """
        snap = recorder.snapshot()
        return cls(
            name=name,
            seed=seed,
            params=dict(params or {}),
            counters=snap["counters"],
            timers=snap["timers"],
            spans=snap["spans"],
        )

    @property
    def elapsed(self) -> float | None:
        """Wall seconds of the root span (``None`` without spans)."""
        if not self.spans:
            return None
        return float(sum(span["elapsed_s"] for span in self.spans))

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "params": dict(self.params),
            "environment": dict(self.environment),
            "counters": dict(self.counters),
            "timers": dict(self.timers),
            "spans": list(self.spans),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_dict` output.

        Parameters
        ----------
        data:
            Dictionary in the :meth:`to_dict` schema.
        """
        return cls(
            name=data["name"],
            seed=data.get("seed"),
            params=dict(data.get("params", {})),
            environment=dict(data.get("environment", {})),
            counters=dict(data.get("counters", {})),
            timers=dict(data.get("timers", {})),
            spans=list(data.get("spans", [])),
        )

    def to_json(self) -> str:
        """One JSON line (no internal newlines), ready for a .jsonl file."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "RunManifest":
        """Parse one JSON line produced by :meth:`to_json`.

        Parameters
        ----------
        line:
            The JSON document to parse.
        """
        return cls.from_dict(json.loads(line))

    # -- sinks ---------------------------------------------------------------

    def emit(self, sink: ManifestSink = None) -> None:
        """Write this manifest to ``sink`` as one JSON line.

        Parameters
        ----------
        sink:
            ``None`` writes to stderr; a string or :class:`~pathlib.Path`
            appends to that file (created if missing); an object with a
            ``write`` method receives the line; any other callable is
            invoked with the manifest dictionary.
        """
        if callable(getattr(sink, "write", None)):
            sink.write(self.to_json() + "\n")
            return
        if callable(sink):
            sink(self.to_dict())
            return
        if sink is None:
            sys.stderr.write(self.to_json() + "\n")
            return
        with open(sink, "a", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")
