"""Chrome trace-event export: manifests → Perfetto-loadable JSON.

Converts a :class:`~repro.obs.manifest.RunManifest` span tree into the
Chrome trace-event format (the ``chrome://tracing`` / Perfetto JSON
dialect): every span becomes a ``B``/``E`` duration pair with
microsecond timestamps, span attributes and counter deltas ride along
in ``args``, and ``M`` metadata events name the process and one thread
track per parallel worker.

Two timebases meet here. Main-recorder spans carry ``start_s`` relative
to the run's recorder; spans adopted from :mod:`repro.parallel` workers
carry timestamps relative to *their worker's* recorder (each task gets
a fresh one), and several tasks that executed on the same worker slot
may overlap once naively overlaid. The exporter therefore lays worker
subtrees out on their track sequentially: each adopted subtree starts
at the later of its parent's start and the track's cursor, preserving
relative offsets inside the subtree. The result reads as "what ran on
each track, in order, for how long" — durations and nesting are exact,
cross-track alignment is schedule-accurate only in submission order.

:func:`validate_chrome_trace` checks the invariants the tests and CI
pin (required keys, per-track B/E pairing, name match at close) in pure
python; :data:`CHROME_TRACE_SCHEMA` is the same contract as a JSON
Schema document for external validators.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.manifest import RunManifest

__all__ = [
    "CHROME_TRACE_SCHEMA",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: JSON Schema (draft-07 subset) for the exported trace document. The
#: exporter tests validate every export against this schema, so the
#: shape is pinned both structurally (here) and semantically
#: (:func:`validate_chrome_trace`).
CHROME_TRACE_SCHEMA: dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["traceEvents", "displayTimeUnit"],
    "properties": {
        "displayTimeUnit": {"type": "string", "enum": ["ms", "ns"]},
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "ph", "pid", "tid"],
                "properties": {
                    "name": {"type": "string", "minLength": 1},
                    "ph": {"type": "string", "enum": ["B", "E", "M"]},
                    "pid": {"type": "integer", "minimum": 0},
                    "tid": {"type": "integer", "minimum": 0},
                    "ts": {"type": "number", "minimum": 0},
                    "args": {"type": "object"},
                },
            },
        },
    },
}

#: The single pid used for all events (one manifest == one process).
_PID = 1

#: tid of the main (non-worker) track.
_MAIN_TID = 0


def to_chrome_trace(manifest: RunManifest) -> dict:
    """Convert a manifest's span tree to a Chrome trace-event document.

    Parameters
    ----------
    manifest:
        The manifest whose ``spans`` to export.

    Returns
    -------
    dict
        ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` ready to be
        ``json.dump``-ed and loaded in Perfetto.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": _MAIN_TID,
            "args": {"name": f"repro:{manifest.name}"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": _MAIN_TID,
            "args": {"name": "main"},
        },
    ]
    named_tracks = {_MAIN_TID}
    cursors: dict[int, float] = {}

    def walk(span: dict, tid: int, offset: float, parent_end: float) -> None:
        attrs = span.get("attrs", {})
        worker = attrs.get("worker")
        if worker is not None and tid == _MAIN_TID:
            # Root of an adopted worker subtree: move to the worker's
            # track and pack sequentially after whatever already ran
            # there (worker timestamps are in the worker's timebase).
            tid = int(worker) + 1
            if tid not in named_tracks:
                named_tracks.add(tid)
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": _PID,
                        "tid": tid,
                        "args": {"name": f"worker-{int(worker)}"},
                    }
                )
            abs_start = max(cursors.get(tid, 0.0), 0.0)
            offset = abs_start - float(span.get("start_s", 0.0))
        abs_start = float(span.get("start_s", 0.0)) + offset
        abs_end = abs_start + max(0.0, float(span.get("elapsed_s", 0.0)))
        args: dict = {}
        if attrs:
            args["attrs"] = {
                key: value
                for key, value in attrs.items()
                if key != "profile"
            }
        if span.get("counters"):
            args["counters"] = span["counters"]
        begin = {
            "name": span["name"],
            "ph": "B",
            "pid": _PID,
            "tid": tid,
            "ts": abs_start * 1e6,
        }
        if args:
            begin["args"] = args
        events.append(begin)
        for child in span.get("children", []):
            walk(child, tid, offset, abs_end)
        events.append(
            {
                "name": span["name"],
                "ph": "E",
                "pid": _PID,
                "tid": tid,
                "ts": abs_end * 1e6,
            }
        )
        cursors[tid] = max(cursors.get(tid, 0.0), abs_end)

    for root in manifest.spans:
        walk(root, _MAIN_TID, 0.0, float("inf"))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(manifest: RunManifest, path: str | Path) -> None:
    """Export ``manifest`` as a Chrome trace JSON file at ``path``."""
    Path(path).write_text(
        json.dumps(to_chrome_trace(manifest), indent=2) + "\n",
        encoding="utf-8",
    )


def validate_chrome_trace(trace: dict) -> list[str]:
    """Check a trace document against the exporter's invariants.

    Pure-python semantic validation (usable where :mod:`jsonschema` is
    unavailable): required keys per event, ``B``/``E`` pairing per
    track with matching names, non-negative non-decreasing duration per
    pair, and no events left open.

    Parameters
    ----------
    trace:
        A document as produced by :func:`to_chrome_trace`.

    Returns
    -------
    list of str
        Human-readable problems; empty when the trace is valid.
    """
    problems: list[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list."]
    stacks: dict[int, list[dict]] = {}
    for i, event in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                problems.append(f"event {i} missing key {key!r}.")
        ph = event.get("ph")
        if ph == "M":
            continue
        if ph not in ("B", "E"):
            problems.append(f"event {i} has unknown phase {ph!r}.")
            continue
        if "ts" not in event:
            problems.append(f"event {i} ({ph}) missing ts.")
            continue
        tid = event.get("tid", 0)
        stack = stacks.setdefault(tid, [])
        if ph == "B":
            stack.append(event)
            continue
        if not stack:
            problems.append(
                f"event {i}: E {event.get('name')!r} on tid {tid} "
                "without an open B."
            )
            continue
        begin = stack.pop()
        if begin.get("name") != event.get("name"):
            problems.append(
                f"event {i}: E {event.get('name')!r} closes "
                f"B {begin.get('name')!r} on tid {tid}."
            )
        if event.get("ts", 0) < begin.get("ts", 0):
            problems.append(
                f"event {i}: E ts precedes its B ts on tid {tid} "
                f"({event.get('name')!r})."
            )
    for tid, stack in sorted(stacks.items()):
        for begin in stack:
            problems.append(
                f"tid {tid}: B {begin.get('name')!r} never closed."
            )
    return problems
