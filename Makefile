# Convenience targets mirroring the CI gates. `make lint` runs every
# static analyser (ruff + repro-lint + the whole-program repro-audit);
# `make test` runs the tier-1 suite. PYTHON can be overridden, e.g.
# `make lint PYTHON=python3.12`.

PYTHON ?= python

.PHONY: lint ruff repro-lint repro-audit test audit-baseline

lint: ruff repro-lint repro-audit

ruff:
	@if command -v ruff >/dev/null 2>&1; then \
	    ruff check src tools tests; \
	else \
	    echo "ruff not installed; skipping (the CI ruff job still gates)"; \
	fi

repro-lint:
	$(PYTHON) -m tools.repro_lint src tools benchmarks

repro-audit:
	$(PYTHON) -m tools.repro_audit src/repro tools benchmarks

# Refresh the accepted-findings baseline after a deliberate contract
# change (review the diff of tools/repro_audit/baseline.txt!).
audit-baseline:
	$(PYTHON) -m tools.repro_audit src/repro tools benchmarks --write-baseline

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
